//! Golden-value regression tests pinning the numeric behavior of `Ph` across
//! refactors of its evaluation and sampling internals.
//!
//! The sample values below were captured from the pre-`PhSampler` chain walk
//! (which allocated the exit vector on every draw); `Ph::sample` is required
//! to reproduce them **bit-identically** so that every seeded simulation in
//! the workspace keeps its exact result history. The analytic values were
//! captured from the pre-`PhEvaluator` term-by-term uniformization; the cached
//! scalar-coefficient path reorders floating-point sums, so those are pinned
//! to 1e-12 rather than bitwise.

use dias_linalg::Matrix;
use dias_stochastic::{Ph, PhSampler};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 0xD1A5;

fn golden_cases() -> Vec<(&'static str, Ph, [f64; 6])> {
    vec![
        (
            "coxian",
            Ph::coxian(&[3.0, 1.5, 0.8], &[0.7, 0.4]).unwrap(),
            [
                2.244845936872754,
                0.16126736288215254,
                0.5410953177526903,
                0.2992690112169548,
                0.27676032373214277,
                0.16333573752069913,
            ],
        ),
        (
            "hyper",
            Ph::hyperexponential(&[0.35, 0.65], &[0.9, 4.0]).unwrap(),
            [
                0.6939074357153889,
                3.027417285058921,
                0.5220725374744654,
                0.09563057560455211,
                0.03558631005826492,
                0.09754051180911978,
            ],
        ),
        (
            "erlang",
            Ph::erlang(4, 2.5).unwrap(),
            [
                2.5594053470617366,
                0.7551075230345574,
                2.198981423047848,
                1.9174620772119229,
                3.329106136766001,
                2.649202005847967,
            ],
        ),
        (
            "atom-at-zero",
            Ph::new(
                vec![0.6, 0.2],
                Matrix::from_rows(&[vec![-2.0, 1.0], vec![0.3, -1.1]]),
            )
            .unwrap(),
            [
                3.0895406726512027,
                0.24190104432322881,
                0.1878430770224939,
                0.7586365139350755,
                1.0638321220272147,
                0.2450036062810487,
            ],
        ),
    ]
}

#[test]
fn ph_sample_streams_are_bit_identical_to_pre_sampler_code() {
    for (name, ph, expect) in golden_cases() {
        let mut rng = StdRng::seed_from_u64(SEED);
        for (i, &e) in expect.iter().enumerate() {
            let got = ph.sample(&mut rng);
            assert!(
                got == e,
                "{name}[{i}]: {got:?} != golden {e:?} — sample stream diverged"
            );
        }
    }
}

#[test]
fn standalone_sampler_matches_golden_streams_too() {
    for (name, ph, expect) in golden_cases() {
        let sampler = PhSampler::new(&ph);
        let mut rng = StdRng::seed_from_u64(SEED);
        for (i, &e) in expect.iter().enumerate() {
            let got = sampler.sample(&mut rng);
            assert!(got == e, "{name}[{i}]: {got:?} != golden {e:?}");
        }
    }
}

#[test]
fn analytic_path_matches_pre_evaluator_values() {
    let erl = Ph::erlang(8, 2.0).unwrap();
    let hyper = Ph::hyperexponential(&[0.4, 0.6], &[1.0, 5.0]).unwrap();
    let job = erl.convolve(&hyper);
    let golden = [
        (0.1, 0.9999999999980448, 1.719286622706655e-10),
        (0.7, 0.9999763160420695, 0.0002578339355518987),
        (3.0, 0.8347651143416419, 0.21116080315197241),
        (9.0, 0.012021431886908655, 0.011463734374698631),
    ];
    for (t, sf, pdf) in golden {
        assert!((job.sf(t) - sf).abs() < 1e-12, "sf({t}) = {:?}", job.sf(t));
        assert!(
            (job.pdf(t) - pdf).abs() < 1e-12,
            "pdf({t}) = {:?}",
            job.pdf(t)
        );
    }
    // Quantiles pin to the bisection tolerance, not bitwise: the bracket is
    // tighter than the pre-refactor one.
    assert!((job.quantile(0.5) - 4.314638680052013).abs() < 1e-7);
    assert!((job.quantile(0.95) - 7.455337289925664).abs() < 1e-7);
    assert!((job.overshoot_moment(2.0, 1) - 2.527527662228535).abs() < 1e-12);
}
