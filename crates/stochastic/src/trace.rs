//! Common-random-number draw traces: record an RNG word stream once, replay
//! it bit-identically everywhere.
//!
//! Sweeps that contrast policies on the same workload want *paired* samples:
//! every sweep point should see the identical arrival/service draw stream, so
//! that the difference between two points is policy effect, not sampling
//! noise (common random numbers). The tools here make that pairing explicit
//! and testable:
//!
//! * [`RecordingRng`] wraps any RNG and captures every 64-bit word it emits.
//! * [`DrawTrace`] is the captured stream plus a snapshot of the source RNG's
//!   state *after* recording.
//! * [`ReplayRng`] plays the recorded words back verbatim and then — because
//!   different policies consume different numbers of draws — continues from
//!   the snapshotted tail state, so the replayed stream is bit-identical to
//!   the live one for *any* number of draws, not just the recorded prefix.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::RngCore;

/// An RNG adaptor that records every word drawn through it.
///
/// Wrap the source RNG, run the reference replica, then call
/// [`RecordingRng::into_trace`] to freeze the observed stream.
#[derive(Debug, Clone)]
pub struct RecordingRng<R = StdRng> {
    inner: R,
    words: Vec<u64>,
}

impl<R: RngCore> RecordingRng<R> {
    /// Wraps `inner`, recording from its current state.
    #[must_use]
    pub fn new(inner: R) -> Self {
        RecordingRng {
            inner,
            words: Vec::new(),
        }
    }

    /// Number of words recorded so far.
    #[must_use]
    pub fn recorded(&self) -> usize {
        self.words.len()
    }
}

impl RecordingRng<StdRng> {
    /// Freezes the recording into a replayable [`DrawTrace`].
    ///
    /// The wrapped RNG's current state becomes the trace's tail: a replay that
    /// runs past the recorded prefix keeps producing exactly the words the
    /// live RNG would have produced.
    #[must_use]
    pub fn into_trace(self) -> DrawTrace {
        DrawTrace {
            words: self.words.into(),
            tail: self.inner,
        }
    }
}

impl<R: RngCore> RngCore for RecordingRng<R> {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let w = self.inner.next_u64();
        self.words.push(w);
        w
    }
}

/// A recorded RNG word stream plus the source state past its end.
///
/// Cheap to clone (the words are shared), so one trace can fan out to many
/// concurrent sweep points.
#[derive(Debug, Clone)]
pub struct DrawTrace {
    words: Arc<[u64]>,
    tail: StdRng,
}

impl DrawTrace {
    /// Number of recorded words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Returns `true` if nothing was recorded (replays are pure tail).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// A fresh replay of the stream from its beginning.
    #[must_use]
    pub fn replay(&self) -> ReplayRng {
        self.replay_from(0)
    }

    /// A replay resuming mid-stream at word `offset` — the offset-cursor
    /// primitive checkpoint-and-branch re-execution uses: a branched run
    /// whose prefix consumed `offset` words continues with exactly the words
    /// the live stream would have produced next, recorded prefix and tail
    /// alike.
    ///
    /// The tail state is only ever consumed after the *whole* recorded
    /// prefix, so a resume at any `offset ≤ len` is bit-identical to a
    /// from-zero replay advanced by `offset` draws.
    ///
    /// # Panics
    ///
    /// Panics if `offset` exceeds the recorded length.
    #[must_use]
    pub fn replay_from(&self, offset: usize) -> ReplayRng {
        assert!(
            offset <= self.words.len(),
            "offset {offset} past the {}-word recording",
            self.words.len()
        );
        ReplayRng {
            words: Arc::clone(&self.words),
            pos: offset,
            tail: self.tail.clone(),
        }
    }
}

/// An RNG that replays a [`DrawTrace`] and then continues from its tail.
///
/// Bit-identical to the live stream the trace was recorded from, for any
/// number of draws.
#[derive(Debug, Clone)]
pub struct ReplayRng {
    words: Arc<[u64]>,
    pos: usize,
    tail: StdRng,
}

impl ReplayRng {
    /// Number of recorded words not yet replayed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// The replay cursor: words consumed so far (recorded prefix only — once
    /// past the recording the cursor stays at the recorded length).
    ///
    /// A driver that checkpoints mid-run stores this offset; resuming with
    /// [`DrawTrace::replay_from`] at the stored offset reproduces the
    /// remaining stream bit for bit.
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }
}

impl RngCore for ReplayRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        match self.words.get(self.pos) {
            Some(&w) => {
                self.pos += 1;
                w
            }
            None => self.tail.next_u64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    #[test]
    fn replay_is_bit_identical_including_past_the_prefix() {
        let mut live = StdRng::seed_from_u64(99);
        let mut recorder = RecordingRng::new(StdRng::seed_from_u64(99));
        let recorded: Vec<u64> = (0..100).map(|_| recorder.next_u64()).collect();
        let trace = recorder.into_trace();
        assert_eq!(trace.len(), 100);

        // Replay twice as many words as were recorded: the prefix comes from
        // the trace, the rest from the tail snapshot — all bit-identical.
        let mut replay = trace.replay();
        for (i, want) in (0..200).map(|i| (i, live.next_u64())) {
            if let Some(&rec) = recorded.get(i) {
                assert_eq!(want, rec);
            }
            assert_eq!(replay.next_u64(), want, "word {i}");
        }
    }

    #[test]
    fn replays_are_independent() {
        let mut recorder = RecordingRng::new(StdRng::seed_from_u64(5));
        let _ = (0..10).map(|_| recorder.next_u64()).count();
        let trace = recorder.into_trace();
        let mut a = trace.replay();
        let a_stream: Vec<u64> = (0..25).map(|_| a.next_u64()).collect();
        let mut b = trace.replay();
        let b_stream: Vec<u64> = (0..25).map(|_| b.next_u64()).collect();
        assert_eq!(a_stream, b_stream);
    }

    #[test]
    fn replay_from_matches_live_stream_at_arbitrary_offsets() {
        let mut live = StdRng::seed_from_u64(41);
        let mut recorder = RecordingRng::new(StdRng::seed_from_u64(41));
        for _ in 0..64 {
            recorder.next_u64();
        }
        let trace = recorder.into_trace();
        // The live stream extended past the recording, so offsets near the
        // end also exercise the prefix → tail hand-off.
        let extended: Vec<u64> = (0..128).map(|_| live.next_u64()).collect();
        // Every offset, including 0 and len: the resumed stream must equal
        // the live stream advanced by `offset` draws, word for word, across
        // the prefix/tail boundary.
        for offset in 0..=trace.len() {
            let mut resumed = trace.replay_from(offset);
            assert_eq!(resumed.position(), offset);
            for (i, want) in extended[offset..].iter().enumerate() {
                assert_eq!(resumed.next_u64(), *want, "offset {offset}, word {i}");
            }
            assert_eq!(resumed.position(), trace.len());
        }
    }

    #[test]
    #[should_panic(expected = "past the")]
    fn replay_from_rejects_offsets_past_the_recording() {
        let trace = RecordingRng::new(StdRng::seed_from_u64(1)).into_trace();
        let _ = trace.replay_from(1);
    }

    #[test]
    fn high_level_draws_match_through_the_adaptors() {
        // gen_range and friends go through next_u64, so distribution-level
        // draws replay identically too.
        let mut recorder = RecordingRng::new(StdRng::seed_from_u64(3));
        let live: Vec<f64> = (0..50).map(|_| recorder.gen_range(0.0..1.0)).collect();
        let mut replay = recorder.into_trace().replay();
        let replayed: Vec<f64> = (0..50).map(|_| replay.gen_range(0.0..1.0)).collect();
        assert_eq!(live, replayed);
    }
}
