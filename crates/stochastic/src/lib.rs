//! Phase-type distributions and arrival processes for the DiAS stochastic models.
//!
//! The DiAS paper (§4) models job processing times *bottom-up* as phase-type (PH)
//! distributions — first at the task level, then at the wave level — and feeds them
//! into an `MMAP[K]/PH[K]/1` priority queue. This crate provides the probabilistic
//! toolbox those models are built from:
//!
//! * [`Ph`] — phase-type distributions: constructors (exponential, Erlang,
//!   hyperexponential, Coxian), closure operations (convolution, mixture, scaling,
//!   minimum/maximum), exact moments, CDF evaluation by uniformization, quantiles,
//!   equilibrium and overshoot distributions, and sampling.
//! * [`MarkedPoisson`] and [`Mmap`] — marked arrival processes with one stream per
//!   priority class, as in the paper's `MMAP[K]` arrivals.
//! * [`Dist`] — scalar distributions used by the engine simulator for task execution
//!   times, with exact means and second moments.
//! * [`DiscreteDist`] — distributions over task counts (the paper's `p_m(t)`,
//!   `p_r(u)`).
//! * [`fit`] — moment-matching: fit a PH to a target mean and squared coefficient of
//!   variation.
//!
//! # Examples
//!
//! ```
//! use dias_stochastic::Ph;
//!
//! // A 3-phase Erlang with rate 6 per phase: mean 0.5, SCV 1/3.
//! let job = Ph::erlang(3, 6.0).unwrap();
//! assert!((job.mean() - 0.5).abs() < 1e-12);
//! assert!((job.scv() - 1.0 / 3.0).abs() < 1e-12);
//! // PH is closed under convolution:
//! let two_jobs = job.convolve(&job);
//! assert!((two_jobs.mean() - 1.0).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod discrete;
mod evaluator;
pub mod fit;
mod mmap;
mod ph;
mod scalar;
mod trace;

pub use discrete::DiscreteDist;
pub use evaluator::{PhEvaluator, PhSampler, QUANTILE_SATURATION};
pub use mmap::{MarkedArrival, MarkedPoisson, MarkedPoissonSampler, Mmap, MmapSampler};
pub use ph::{Ph, PhError};
pub use scalar::{Dist, DistSampler, ZipfSampler};
pub use trace::{DrawTrace, RecordingRng, ReplayRng};

/// Draws an exponential variate with the given `rate` using inverse transform.
///
/// # Panics
///
/// Panics if `rate <= 0`.
pub fn sample_exp<R: rand::Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate > 0.0, "exponential rate must be positive");
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / rate
}

/// Draws a standard normal variate via Box–Muller.
pub fn sample_std_normal<R: rand::Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exp_sample_mean() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| sample_exp(&mut rng, 4.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn normal_sample_moments() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_std_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
