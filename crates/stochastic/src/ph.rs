//! Phase-type (PH) distributions.
//!
//! A PH distribution is the time to absorption of a finite continuous-time Markov
//! chain with one absorbing state. It is represented by the pair `(α, A)` where `α`
//! is the initial distribution over the transient phases and `A` the sub-generator
//! among them; the exit-rate vector is `a = −A·1`. The class is dense in all
//! distributions on `[0, ∞)` and closed under convolution, mixture, minimum and
//! maximum — the properties the paper exploits to compose task-, wave- and job-level
//! processing times (§4).

use std::fmt;
use std::sync::{Mutex, OnceLock, PoisonError};

use rand::Rng;
use serde::{Deserialize, Serialize};

use dias_linalg::{dot, Matrix};

use crate::evaluator::{PhEvaluator, PhSampler};

/// Errors from constructing or manipulating a PH distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum PhError {
    /// The initial vector has negative mass or sums to more than 1.
    BadInitialVector(String),
    /// The matrix is not a valid sub-generator.
    BadSubGenerator(String),
    /// Dimensions of `α` and `A` differ.
    DimensionMismatch {
        /// Length of the initial vector.
        alpha: usize,
        /// Order of the sub-generator.
        matrix: usize,
    },
    /// A numeric routine failed (singular matrix, no convergence).
    Numeric(String),
}

impl fmt::Display for PhError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhError::BadInitialVector(msg) => write!(f, "invalid initial vector: {msg}"),
            PhError::BadSubGenerator(msg) => write!(f, "invalid sub-generator: {msg}"),
            PhError::DimensionMismatch { alpha, matrix } => {
                write!(
                    f,
                    "alpha has {alpha} entries but matrix is {matrix}x{matrix}"
                )
            }
            PhError::Numeric(msg) => write!(f, "numeric failure: {msg}"),
        }
    }
}

impl std::error::Error for PhError {}

/// A phase-type distribution `(α, A)`.
///
/// Construction validates the representation: `α ≥ 0`, `Σα ≤ 1` (deficient mass is an
/// atom at zero), off-diagonal entries of `A` non-negative, row sums ≤ 0 and at least
/// one strictly negative exit path so absorption is certain.
///
/// # Examples
///
/// ```
/// use dias_stochastic::Ph;
///
/// let exp = Ph::exponential(2.0).unwrap();
/// assert!((exp.mean() - 0.5).abs() < 1e-12);
/// assert!((exp.cdf(0.5) - (1.0 - (-1.0f64).exp())).abs() < 1e-10);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct Ph {
    alpha: Vec<f64>,
    a: Matrix,
    /// Lazily built shared evaluator backing `sf`/`cdf`/`pdf`/`quantile`/
    /// `overshoot_moment`; see [`PhEvaluator`].
    evaluator: OnceLock<Mutex<PhEvaluator>>,
    /// Lazily built sampler backing `sample`; see [`PhSampler`].
    sampler: OnceLock<PhSampler>,
}

/// Equality is over the representation `(α, A)`; the lazy caches are derived
/// state and do not participate.
impl PartialEq for Ph {
    fn eq(&self, other: &Ph) -> bool {
        self.alpha == other.alpha && self.a == other.a
    }
}

/// Cloning copies the representation; the clone starts with cold caches.
impl Clone for Ph {
    fn clone(&self) -> Ph {
        Ph::raw(self.alpha.clone(), self.a.clone())
    }
}

impl Ph {
    /// Internal constructor for representations already known to be valid
    /// (or deliberately unvalidated, as in `scaled`/`equilibrium`).
    pub(crate) fn raw(alpha: Vec<f64>, a: Matrix) -> Ph {
        Ph {
            alpha,
            a,
            evaluator: OnceLock::new(),
            sampler: OnceLock::new(),
        }
    }

    /// Runs `f` against the lazily built, internally shared evaluator.
    fn with_evaluator<T>(&self, f: impl FnOnce(&mut PhEvaluator) -> T) -> T {
        let cache = self
            .evaluator
            .get_or_init(|| Mutex::new(PhEvaluator::new(self)));
        let mut guard = cache.lock().unwrap_or_else(PoisonError::into_inner);
        f(&mut guard)
    }

    /// A fresh, privately owned [`PhEvaluator`] for this distribution.
    ///
    /// [`Ph::sf`] and friends already share a lazily built evaluator behind a
    /// lock; hot loops issuing many queries should hold their own instance to
    /// skip the synchronization.
    #[must_use]
    pub fn evaluator(&self) -> PhEvaluator {
        PhEvaluator::new(self)
    }

    /// The lazily built, cached [`PhSampler`] for this distribution.
    #[must_use]
    pub fn sampler(&self) -> &PhSampler {
        self.sampler.get_or_init(|| PhSampler::new(self))
    }
    /// Builds a PH distribution from an initial vector and sub-generator.
    ///
    /// # Errors
    ///
    /// Returns a [`PhError`] if the representation is invalid.
    pub fn new(alpha: Vec<f64>, a: Matrix) -> Result<Self, PhError> {
        if !a.is_square() || alpha.len() != a.rows() {
            return Err(PhError::DimensionMismatch {
                alpha: alpha.len(),
                matrix: a.rows(),
            });
        }
        let mass: f64 = alpha.iter().sum();
        if alpha.iter().any(|&x| x < -1e-12) {
            return Err(PhError::BadInitialVector("negative entry".into()));
        }
        if mass > 1.0 + 1e-9 {
            return Err(PhError::BadInitialVector(format!("mass {mass} > 1")));
        }
        let n = a.rows();
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                let v = a[(i, j)];
                if i != j && v < -1e-12 {
                    return Err(PhError::BadSubGenerator(format!(
                        "negative off-diagonal at ({i},{j})"
                    )));
                }
                row_sum += v;
            }
            if row_sum > 1e-9 {
                return Err(PhError::BadSubGenerator(format!(
                    "row {i} sums to {row_sum} > 0"
                )));
            }
            if a[(i, i)] >= 0.0 && n > 0 {
                return Err(PhError::BadSubGenerator(format!(
                    "diagonal entry at ({i},{i}) must be negative"
                )));
            }
        }
        Ok(Ph::raw(alpha, a))
    }

    /// The exponential distribution with the given `rate` as a 1-phase PH.
    ///
    /// # Errors
    ///
    /// Returns [`PhError::BadSubGenerator`] if `rate <= 0`.
    pub fn exponential(rate: f64) -> Result<Self, PhError> {
        if rate <= 0.0 {
            return Err(PhError::BadSubGenerator(format!("rate {rate} must be > 0")));
        }
        Ph::new(vec![1.0], Matrix::from_rows(&[vec![-rate]]))
    }

    /// An Erlang distribution: `k` phases in series, each with `rate`.
    ///
    /// # Errors
    ///
    /// Returns [`PhError`] if `k == 0` or `rate <= 0`.
    pub fn erlang(k: usize, rate: f64) -> Result<Self, PhError> {
        if k == 0 {
            return Err(PhError::BadInitialVector("erlang needs k >= 1".into()));
        }
        if rate <= 0.0 {
            return Err(PhError::BadSubGenerator(format!("rate {rate} must be > 0")));
        }
        let mut a = Matrix::zeros(k, k);
        for i in 0..k {
            a[(i, i)] = -rate;
            if i + 1 < k {
                a[(i, i + 1)] = rate;
            }
        }
        let mut alpha = vec![0.0; k];
        alpha[0] = 1.0;
        // Bidiagonal with `-rate` on the diagonal and `rate` above it is a valid
        // sub-generator by construction; skip the O(k²) `Ph::new` validation,
        // which dominates at the large orders produced by moment-matching fits.
        Ok(Ph::raw(alpha, a))
    }

    /// A hyperexponential distribution: with probability `probs[i]` an exponential
    /// of `rates[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`PhError`] if the vectors disagree in length, probabilities do not
    /// sum to 1, or any rate is non-positive.
    pub fn hyperexponential(probs: &[f64], rates: &[f64]) -> Result<Self, PhError> {
        if probs.len() != rates.len() || probs.is_empty() {
            return Err(PhError::BadInitialVector(
                "probs and rates must have equal non-zero length".into(),
            ));
        }
        let total: f64 = probs.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(PhError::BadInitialVector(format!(
                "probabilities sum to {total}, expected 1"
            )));
        }
        let n = probs.len();
        let mut a = Matrix::zeros(n, n);
        for (i, &r) in rates.iter().enumerate() {
            if r <= 0.0 {
                return Err(PhError::BadSubGenerator(format!("rate {r} must be > 0")));
            }
            a[(i, i)] = -r;
        }
        Ph::new(probs.to_vec(), a)
    }

    /// A Coxian distribution: phases in series with rates `rates[i]` and continue
    /// probabilities `continue_probs[i]` (length one less than `rates`).
    ///
    /// # Errors
    ///
    /// Returns [`PhError`] on inconsistent lengths, out-of-range probabilities or
    /// non-positive rates.
    pub fn coxian(rates: &[f64], continue_probs: &[f64]) -> Result<Self, PhError> {
        if rates.is_empty() || continue_probs.len() + 1 != rates.len() {
            return Err(PhError::BadInitialVector(
                "need n rates and n-1 continue probabilities".into(),
            ));
        }
        let n = rates.len();
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let r = rates[i];
            if r <= 0.0 {
                return Err(PhError::BadSubGenerator(format!("rate {r} must be > 0")));
            }
            a[(i, i)] = -r;
            if i + 1 < n {
                let p = continue_probs[i];
                if !(0.0..=1.0).contains(&p) {
                    return Err(PhError::BadInitialVector(format!(
                        "continue probability {p} outside [0,1]"
                    )));
                }
                a[(i, i + 1)] = r * p;
            }
        }
        let mut alpha = vec![0.0; n];
        alpha[0] = 1.0;
        Ph::new(alpha, a)
    }

    /// The initial probability vector `α`.
    #[must_use]
    pub fn alpha(&self) -> &[f64] {
        &self.alpha
    }

    /// The sub-generator `A`.
    #[must_use]
    pub fn matrix(&self) -> &Matrix {
        &self.a
    }

    /// The exit-rate vector `a = −A·1`.
    #[must_use]
    pub fn exit_vector(&self) -> Vec<f64> {
        self.a.row_sums().iter().map(|s| -s).collect()
    }

    /// Number of transient phases.
    #[must_use]
    pub fn order(&self) -> usize {
        self.alpha.len()
    }

    /// Probability mass at zero, `1 − Σα`.
    #[must_use]
    pub fn mass_at_zero(&self) -> f64 {
        (1.0 - self.alpha.iter().sum::<f64>()).max(0.0)
    }

    /// The `k`-th raw moment, `E[X^k] = k! · α (−A)^{-k} 1`.
    ///
    /// # Panics
    ///
    /// Panics if the sub-generator is singular, which construction rules out.
    #[must_use]
    pub fn moment(&self, k: u32) -> f64 {
        if k == 0 {
            return dot(&self.alpha, &vec![1.0; self.order()]);
        }
        self.moments(k).last().copied().expect("k >= 1")
    }

    /// All raw moments `E[X], E[X²], …, E[X^k]` from a single LU
    /// factorization of `−A`.
    ///
    /// The moment recursion solves against the same matrix `k` times;
    /// factorizing once makes the family of moments one elimination plus `k`
    /// substitutions, bit-identical to `k` independent [`Ph::moment`] calls.
    ///
    /// # Panics
    ///
    /// Panics if the sub-generator is singular, which construction rules out.
    #[must_use]
    pub fn moments(&self, k: u32) -> Vec<f64> {
        let neg_a = self.a.scaled(-1.0);
        let lu = neg_a
            .lu_factorize()
            .expect("validated sub-generator is nonsingular");
        let mut v = vec![1.0; self.order()];
        let mut factorial = 1.0;
        let mut out = Vec::with_capacity(k as usize);
        for i in 1..=k {
            v = lu.solve(&v);
            factorial *= f64::from(i);
            out.push(factorial * dot(&self.alpha, &v));
        }
        out
    }

    /// Mean `E[X]`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.moment(1)
    }

    /// Variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let m = self.moments(2);
        (m[1] - m[0] * m[0]).max(0.0)
    }

    /// Squared coefficient of variation, `Var/E²`.
    #[must_use]
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        if m <= 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// Survival function `P(X > t) = α e^{At} 1`, evaluated by uniformization
    /// against the lazily built shared [`PhEvaluator`] cache.
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    #[must_use]
    pub fn sf(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "sf requires t >= 0");
        self.with_evaluator(|ev| ev.sf(t))
    }

    /// Cumulative distribution function `P(X ≤ t)`.
    #[must_use]
    pub fn cdf(&self, t: f64) -> f64 {
        1.0 - self.sf(t)
    }

    /// Probability density `f(t) = α e^{At} a`.
    #[must_use]
    pub fn pdf(&self, t: f64) -> f64 {
        assert!(t >= 0.0, "pdf requires t >= 0");
        self.with_evaluator(|ev| ev.pdf(t))
    }

    /// The `q`-quantile: log-space bracketing then bisection on the cached
    /// CDF (see [`PhEvaluator::quantile`]).
    ///
    /// Saturates at [`crate::QUANTILE_SATURATION`] when the CDF never reaches
    /// `q` within that horizon (distributions of extreme scale or numerically
    /// defective representations) and returns the saturation point in that
    /// case.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1)`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile must be in [0,1)");
        self.with_evaluator(|ev| ev.quantile(q))
    }

    /// Convolution: the distribution of the sum of two independent PH variables.
    ///
    /// The representation is the standard block form: mass entering the second block
    /// through the first block's exit vector, plus any atom at zero of either operand
    /// short-circuiting appropriately.
    #[must_use]
    pub fn convolve(&self, other: &Ph) -> Ph {
        let n1 = self.order();
        let n2 = other.order();
        let mut a = Matrix::zeros(n1 + n2, n1 + n2);
        for i in 0..n1 {
            for j in 0..n1 {
                a[(i, j)] = self.a[(i, j)];
            }
        }
        let exit1 = self.exit_vector();
        for i in 0..n1 {
            for j in 0..n2 {
                a[(i, n1 + j)] = exit1[i] * other.alpha[j];
            }
        }
        for i in 0..n2 {
            for j in 0..n2 {
                a[(n1 + i, n1 + j)] = other.a[(i, j)];
            }
        }
        let zero1 = self.mass_at_zero();
        let mut alpha = Vec::with_capacity(n1 + n2);
        alpha.extend_from_slice(&self.alpha);
        // If the first variable is 0, the sum starts directly in the second block.
        alpha.extend(other.alpha.iter().map(|&b| zero1 * b));
        Ph::new(alpha, a).expect("convolution of valid PH is valid")
    }

    /// Mixture: with probability `weights[i]` draw from `components[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`PhError`] if inputs are empty, lengths differ, or weights do not sum
    /// to 1.
    pub fn mixture(weights: &[f64], components: &[Ph]) -> Result<Ph, PhError> {
        if weights.len() != components.len() || weights.is_empty() {
            return Err(PhError::BadInitialVector(
                "mixture needs equal-length, non-empty weights and components".into(),
            ));
        }
        let total: f64 = weights.iter().sum();
        if (total - 1.0).abs() > 1e-9 {
            return Err(PhError::BadInitialVector(format!(
                "weights sum to {total}, expected 1"
            )));
        }
        let order: usize = components.iter().map(Ph::order).sum();
        let mut a = Matrix::zeros(order, order);
        let mut alpha = Vec::with_capacity(order);
        let mut offset = 0;
        for (w, c) in weights.iter().zip(components) {
            let n = c.order();
            for i in 0..n {
                a.row_mut(offset + i)[offset..offset + n].copy_from_slice(c.a.row(i));
            }
            alpha.extend(c.alpha.iter().map(|&x| w * x));
            offset += n;
        }
        // A block-diagonal embed of valid sub-generators with a convex
        // combination of their (sub-stochastic) initial vectors is valid by
        // construction — the components were validated when built, so the
        // O(order²) `Ph::new` scan would only re-check known invariants.
        Ok(Ph::raw(alpha, a))
    }

    /// Rescales time by `factor`: if `X ~ (α, A)` then `factor · X ~ (α, A/factor)`.
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Ph {
        assert!(factor > 0.0, "scale factor must be positive");
        Ph::raw(self.alpha.clone(), self.a.scaled(1.0 / factor))
    }

    /// The minimum of two independent PH variables (Kronecker construction).
    #[must_use]
    pub fn minimum(&self, other: &Ph) -> Ph {
        let a = self.a.kron_sum(&other.a);
        let alpha = kron_vec(&self.alpha, &other.alpha);
        Ph::new(alpha, a).expect("minimum of valid PH is valid")
    }

    /// The maximum of two independent PH variables.
    ///
    /// Uses `max(X,Y) = X + Y − min(X,Y)` on means only when exactness suffices; the
    /// distributional construction tracks which variable is still running after the
    /// other absorbed.
    #[must_use]
    pub fn maximum(&self, other: &Ph) -> Ph {
        // State space: both running (n1*n2), only X running (n1), only Y running (n2).
        let n1 = self.order();
        let n2 = other.order();
        let both = n1 * n2;
        let total = both + n1 + n2;
        let mut a = Matrix::zeros(total, total);
        let joint = self.a.kron_sum(&other.a);
        for i in 0..both {
            for j in 0..both {
                a[(i, j)] = joint[(i, j)];
            }
        }
        let exit1 = self.exit_vector();
        let exit2 = other.exit_vector();
        // From (i,k): Y absorbs (rate exit2[k]) -> only X at phase i.
        for i in 0..n1 {
            for k in 0..n2 {
                let row = i * n2 + k;
                a[(row, both + i)] += exit2[k];
                a[(row, both + n1 + k)] += exit1[i];
            }
        }
        for i in 0..n1 {
            for j in 0..n1 {
                a[(both + i, both + j)] = self.a[(i, j)];
            }
        }
        for k in 0..n2 {
            for l in 0..n2 {
                a[(both + n1 + k, both + n1 + l)] = other.a[(k, l)];
            }
        }
        let mut alpha = vec![0.0; total];
        for i in 0..n1 {
            for k in 0..n2 {
                alpha[i * n2 + k] = self.alpha[i] * other.alpha[k];
            }
        }
        // If one variable has an atom at zero, the max starts in the solo block.
        let z1 = self.mass_at_zero();
        let z2 = other.mass_at_zero();
        for i in 0..n1 {
            alpha[both + i] += z2 * self.alpha[i];
        }
        for k in 0..n2 {
            alpha[both + n1 + k] += z1 * other.alpha[k];
        }
        Ph::new(alpha, a).expect("maximum of valid PH is valid")
    }

    /// The equilibrium (stationary-excess) distribution, PH with `α_e = α(−A)^{-1}/E[X]`
    /// and the same sub-generator. This is the residual service seen by a Poisson
    /// arrival, the quantity that drives waiting-time formulas.
    ///
    /// # Panics
    ///
    /// Panics if the distribution has zero mean.
    #[must_use]
    pub fn equilibrium(&self) -> Ph {
        let mean = self.mean();
        assert!(mean > 0.0, "equilibrium of a zero-mean distribution");
        let neg_a_t = self.a.scaled(-1.0).transpose();
        let v = neg_a_t
            .solve(&self.alpha)
            .expect("validated sub-generator is nonsingular");
        let alpha_e: Vec<f64> = v.iter().map(|x| (x / mean).max(0.0)).collect();
        Ph::raw(alpha_e, self.a.clone())
    }

    /// Unconditional overshoot moments `E[((X−t)^+)^k] = k!·(α e^{At})(−A)^{-k} 1`,
    /// with the solve vectors cached across calls in the shared evaluator.
    ///
    /// Used to compute the moments of sprint-modified service times, where a job runs
    /// at base speed until the timeout `t` and accelerated afterwards.
    #[must_use]
    pub fn overshoot_moment(&self, t: f64, k: u32) -> f64 {
        assert!(t >= 0.0, "overshoot requires t >= 0");
        self.with_evaluator(|ev| ev.overshoot_moment(t, k))
    }

    /// Draws a sample by simulating the underlying Markov chain, through the
    /// lazily built cached [`PhSampler`] (allocation-free per draw; streams
    /// are bit-identical to the direct chain walk).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.sampler().sample(rng)
    }
}

impl fmt::Display for Ph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PH(order={}, mean={:.4}, scv={:.4})",
            self.order(),
            self.mean(),
            self.scv()
        )
    }
}

/// Kronecker product of two probability vectors.
fn kron_vec(a: &[f64], b: &[f64]) -> Vec<f64> {
    let mut out = Vec::with_capacity(a.len() * b.len());
    for &x in a {
        for &y in b {
            out.push(x * y);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    #[test]
    fn exponential_moments() {
        let e = Ph::exponential(4.0).unwrap();
        assert_close(e.mean(), 0.25, 1e-12);
        assert_close(e.moment(2), 2.0 / 16.0, 1e-12);
        assert_close(e.scv(), 1.0, 1e-12);
    }

    #[test]
    fn erlang_moments() {
        let e = Ph::erlang(4, 8.0).unwrap();
        assert_close(e.mean(), 0.5, 1e-12);
        assert_close(e.variance(), 4.0 / 64.0, 1e-12);
        assert_close(e.scv(), 0.25, 1e-12);
    }

    #[test]
    fn hyperexponential_moments() {
        let h = Ph::hyperexponential(&[0.4, 0.6], &[1.0, 3.0]).unwrap();
        let mean = 0.4 / 1.0 + 0.6 / 3.0;
        assert_close(h.mean(), mean, 1e-12);
        assert!(h.scv() > 1.0, "hyperexponential has SCV > 1");
    }

    #[test]
    fn coxian_reduces_to_erlang() {
        let c = Ph::coxian(&[5.0, 5.0, 5.0], &[1.0, 1.0]).unwrap();
        let e = Ph::erlang(3, 5.0).unwrap();
        assert_close(c.mean(), e.mean(), 1e-12);
        assert_close(c.moment(2), e.moment(2), 1e-12);
        assert_close(c.cdf(0.7), e.cdf(0.7), 1e-10);
    }

    #[test]
    fn cdf_matches_exponential_closed_form() {
        let e = Ph::exponential(2.0).unwrap();
        for t in [0.0, 0.1, 0.5, 1.0, 3.0] {
            assert_close(e.cdf(t), 1.0 - (-2.0 * t).exp(), 1e-10);
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        let p = Ph::erlang(3, 2.0).unwrap();
        // Trapezoidal integration of the pdf up to t=2.
        let n = 4000;
        let h = 2.0 / n as f64;
        let mut integral = 0.0;
        for i in 0..n {
            let t0 = i as f64 * h;
            integral += 0.5 * h * (p.pdf(t0) + p.pdf(t0 + h));
        }
        assert_close(integral, p.cdf(2.0), 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let p = Ph::erlang(2, 3.0).unwrap();
        for q in [0.1, 0.5, 0.9, 0.99] {
            let t = p.quantile(q);
            assert_close(p.cdf(t), q, 1e-6);
        }
    }

    #[test]
    fn convolution_adds_moments() {
        let a = Ph::exponential(1.0).unwrap();
        let b = Ph::erlang(2, 4.0).unwrap();
        let c = a.convolve(&b);
        assert_close(c.mean(), a.mean() + b.mean(), 1e-12);
        let var = c.variance();
        assert_close(var, a.variance() + b.variance(), 1e-10);
    }

    #[test]
    fn convolution_chain_is_erlang() {
        let e = Ph::exponential(3.0).unwrap();
        let sum3 = e.convolve(&e).convolve(&e);
        let erl = Ph::erlang(3, 3.0).unwrap();
        assert_close(sum3.cdf(1.0), erl.cdf(1.0), 1e-9);
        assert_close(sum3.moment(3), erl.moment(3), 1e-9);
    }

    #[test]
    fn mixture_weights_moments() {
        let a = Ph::exponential(1.0).unwrap();
        let b = Ph::exponential(10.0).unwrap();
        let m = Ph::mixture(&[0.3, 0.7], &[a.clone(), b.clone()]).unwrap();
        assert_close(m.mean(), 0.3 * a.mean() + 0.7 * b.mean(), 1e-12);
        assert_close(m.moment(2), 0.3 * a.moment(2) + 0.7 * b.moment(2), 1e-12);
    }

    #[test]
    fn scaled_shifts_mean() {
        let p = Ph::erlang(2, 1.0).unwrap();
        let s = p.scaled(0.4);
        assert_close(s.mean(), 0.4 * p.mean(), 1e-12);
        // Speeding up by 2.5x = scaling time by 0.4.
        assert_close(s.scv(), p.scv(), 1e-12);
    }

    #[test]
    fn minimum_of_exponentials() {
        let a = Ph::exponential(2.0).unwrap();
        let b = Ph::exponential(3.0).unwrap();
        let m = a.minimum(&b);
        assert_close(m.mean(), 1.0 / 5.0, 1e-10);
    }

    #[test]
    fn maximum_of_exponentials() {
        let a = Ph::exponential(2.0).unwrap();
        let b = Ph::exponential(3.0).unwrap();
        let m = a.maximum(&b);
        // E[max] = 1/2 + 1/3 - 1/5
        assert_close(m.mean(), 0.5 + 1.0 / 3.0 - 0.2, 1e-10);
    }

    #[test]
    fn max_min_consistency() {
        let a = Ph::erlang(2, 2.0).unwrap();
        let b = Ph::exponential(1.5).unwrap();
        let lhs = a.minimum(&b).mean() + a.maximum(&b).mean();
        assert_close(lhs, a.mean() + b.mean(), 1e-9);
    }

    #[test]
    fn equilibrium_of_exponential_is_itself() {
        let e = Ph::exponential(2.0).unwrap();
        let eq = e.equilibrium();
        assert_close(eq.mean(), e.mean(), 1e-12);
        assert_close(eq.cdf(0.3), e.cdf(0.3), 1e-10);
    }

    #[test]
    fn equilibrium_mean_formula() {
        // E[X_e] = E[X²] / (2 E[X]).
        let p = Ph::erlang(3, 2.0).unwrap();
        let eq = p.equilibrium();
        assert_close(eq.mean(), p.moment(2) / (2.0 * p.mean()), 1e-10);
    }

    #[test]
    fn overshoot_moment_exponential_memoryless() {
        let e = Ph::exponential(2.0).unwrap();
        // E[(X-t)^+] = P(X>t) * E[X] by memorylessness.
        for t in [0.1, 0.5, 2.0] {
            assert_close(e.overshoot_moment(t, 1), e.sf(t) * 0.5, 1e-10);
        }
        // t=0 recovers the raw moment.
        assert_close(e.overshoot_moment(0.0, 2), e.moment(2), 1e-10);
    }

    #[test]
    fn sampling_matches_moments() {
        let p = Ph::hyperexponential(&[0.5, 0.5], &[1.0, 5.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let xs: Vec<f64> = (0..n).map(|_| p.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        assert_close(mean, p.mean(), 0.02);
        let m2 = xs.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((m2 - p.moment(2)).abs() / p.moment(2) < 0.05);
    }

    #[test]
    fn invalid_representations_rejected() {
        assert!(Ph::exponential(0.0).is_err());
        assert!(Ph::exponential(-1.0).is_err());
        assert!(Ph::erlang(0, 1.0).is_err());
        assert!(Ph::hyperexponential(&[0.5, 0.6], &[1.0, 1.0]).is_err());
        // Positive row sum rejected.
        let bad = Matrix::from_rows(&[vec![-1.0, 2.0], vec![0.0, -1.0]]);
        assert!(Ph::new(vec![1.0, 0.0], bad).is_err());
        // Alpha too long.
        assert!(Ph::new(vec![0.5, 0.5], Matrix::from_rows(&[vec![-1.0]])).is_err());
    }

    #[test]
    fn atom_at_zero_handled() {
        // 30% chance of zero, otherwise Exp(1).
        let p = Ph::new(vec![0.7], Matrix::from_rows(&[vec![-1.0]])).unwrap();
        assert_close(p.mass_at_zero(), 0.3, 1e-12);
        assert_close(p.mean(), 0.7, 1e-12);
        assert_close(p.cdf(0.0), 0.3, 1e-10);
        let mut rng = StdRng::seed_from_u64(3);
        let zeros = (0..10_000).filter(|_| p.sample(&mut rng) == 0.0).count();
        assert!((zeros as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }
}
