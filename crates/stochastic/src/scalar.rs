//! Scalar distributions for task execution times and workload generation.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::{sample_exp, sample_std_normal};

/// A scalar, non-negative distribution with closed-form first two moments.
///
/// The engine simulator samples task execution times, setup overheads and shuffle
/// durations from these; the models consume their exact moments. Keeping the enum
/// closed lets experiment configurations be serialized and replayed.
///
/// # Examples
///
/// ```
/// use dias_stochastic::Dist;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let d = Dist::erlang(4, 2.0);
/// assert!((d.mean() - 2.0).abs() < 1e-12);
/// let mut rng = StdRng::seed_from_u64(0);
/// assert!(d.sample(&mut rng) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dist {
    /// A point mass at `value`.
    Constant {
        /// The constant value.
        value: f64,
    },
    /// Exponential with the given mean.
    Exponential {
        /// Mean of the distribution.
        mean: f64,
    },
    /// Erlang-`k` with the given mean (sum of `k` exponentials).
    Erlang {
        /// Number of phases.
        k: u32,
        /// Mean of the distribution.
        mean: f64,
    },
    /// Uniform on `[lo, hi]`.
    Uniform {
        /// Lower bound.
        lo: f64,
        /// Upper bound.
        hi: f64,
    },
    /// Lognormal parameterized by the *target* mean and squared coefficient of
    /// variation (not the underlying normal's parameters).
    LogNormal {
        /// Mean of the distribution.
        mean: f64,
        /// Squared coefficient of variation.
        scv: f64,
    },
    /// Two-branch hyperexponential parameterized by mean and SCV ≥ 1 with balanced
    /// means, for bursty task times.
    HyperExp {
        /// Mean of the distribution.
        mean: f64,
        /// Squared coefficient of variation (must be ≥ 1).
        scv: f64,
    },
}

impl Dist {
    /// A point mass.
    #[must_use]
    pub fn constant(value: f64) -> Self {
        assert!(value >= 0.0, "constant must be non-negative");
        Dist::Constant { value }
    }

    /// Exponential with the given mean.
    #[must_use]
    pub fn exponential(mean: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        Dist::Exponential { mean }
    }

    /// Erlang-`k` with the given mean.
    #[must_use]
    pub fn erlang(k: u32, mean: f64) -> Self {
        assert!(k >= 1, "erlang needs k >= 1");
        assert!(mean > 0.0, "mean must be positive");
        Dist::Erlang { k, mean }
    }

    /// Uniform on `[lo, hi]`.
    #[must_use]
    pub fn uniform(lo: f64, hi: f64) -> Self {
        assert!(0.0 <= lo && lo < hi, "need 0 <= lo < hi");
        Dist::Uniform { lo, hi }
    }

    /// Lognormal with the given mean and SCV.
    #[must_use]
    pub fn lognormal(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0 && scv > 0.0, "mean and scv must be positive");
        Dist::LogNormal { mean, scv }
    }

    /// Balanced-means hyperexponential with the given mean and SCV ≥ 1.
    #[must_use]
    pub fn hyperexp(mean: f64, scv: f64) -> Self {
        assert!(mean > 0.0, "mean must be positive");
        assert!(scv >= 1.0, "hyperexponential needs scv >= 1");
        Dist::HyperExp { mean, scv }
    }

    /// The mean.
    #[must_use]
    pub fn mean(&self) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Exponential { mean }
            | Dist::Erlang { mean, .. }
            | Dist::LogNormal { mean, .. }
            | Dist::HyperExp { mean, .. } => mean,
            Dist::Uniform { lo, hi } => 0.5 * (lo + hi),
        }
    }

    /// The second raw moment `E[X²]`.
    #[must_use]
    pub fn second_moment(&self) -> f64 {
        let m = self.mean();
        match *self {
            Dist::Constant { .. } => m * m,
            Dist::Exponential { .. } => 2.0 * m * m,
            Dist::Erlang { k, .. } => m * m * (1.0 + 1.0 / f64::from(k)),
            Dist::Uniform { lo, hi } => (hi * hi + hi * lo + lo * lo) / 3.0,
            Dist::LogNormal { scv, .. } | Dist::HyperExp { scv, .. } => m * m * (1.0 + scv),
        }
    }

    /// Variance.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.second_moment() - m * m).max(0.0)
    }

    /// Squared coefficient of variation.
    #[must_use]
    pub fn scv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.variance() / (m * m)
        }
    }

    /// Returns a copy with the mean multiplied by `factor` (same shape / SCV).
    ///
    /// # Panics
    ///
    /// Panics if `factor <= 0`.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Dist {
        assert!(factor > 0.0, "scale factor must be positive");
        match *self {
            Dist::Constant { value } => Dist::Constant {
                value: value * factor,
            },
            Dist::Exponential { mean } => Dist::Exponential {
                mean: mean * factor,
            },
            Dist::Erlang { k, mean } => Dist::Erlang {
                k,
                mean: mean * factor,
            },
            Dist::Uniform { lo, hi } => Dist::Uniform {
                lo: lo * factor,
                hi: hi * factor,
            },
            Dist::LogNormal { mean, scv } => Dist::LogNormal {
                mean: mean * factor,
                scv,
            },
            Dist::HyperExp { mean, scv } => Dist::HyperExp {
                mean: mean * factor,
                scv,
            },
        }
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            Dist::Constant { value } => value,
            Dist::Exponential { mean } => sample_exp(rng, 1.0 / mean),
            Dist::Erlang { k, mean } => {
                let rate = f64::from(k) / mean;
                (0..k).map(|_| sample_exp(rng, rate)).sum()
            }
            Dist::Uniform { lo, hi } => rng.gen_range(lo..hi),
            Dist::LogNormal { mean, scv } => {
                // If X = exp(μ + σZ): E[X] = exp(μ + σ²/2), SCV = exp(σ²) − 1.
                let sigma2 = (1.0 + scv).ln();
                let mu = mean.ln() - 0.5 * sigma2;
                (mu + sigma2.sqrt() * sample_std_normal(rng)).exp()
            }
            Dist::HyperExp { mean, scv } => {
                // Balanced-means 2-phase fit.
                let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
                let (p1, r1, r2) = (p, 2.0 * p / mean, 2.0 * (1.0 - p) / mean);
                if rng.gen::<f64>() < p1 {
                    sample_exp(rng, r1)
                } else {
                    sample_exp(rng, r2)
                }
            }
        }
    }

    /// Converts to an equivalent (or moment-matched) phase-type distribution.
    ///
    /// Constant and lognormal shapes are approximated via [`crate::fit::ph_from_mean_scv`];
    /// exponential, Erlang and hyperexponential are exact.
    #[must_use]
    pub fn to_ph(&self) -> crate::Ph {
        match *self {
            Dist::Exponential { mean } => {
                crate::Ph::exponential(1.0 / mean).expect("positive rate")
            }
            Dist::Erlang { k, mean } => {
                crate::Ph::erlang(k as usize, f64::from(k) / mean).expect("valid erlang")
            }
            _ => crate::fit::ph_from_mean_scv(self.mean(), self.scv().max(1e-4)),
        }
    }
}

/// A repeated-draw sampler for one [`Dist`] with precomputed parameters.
///
/// [`Dist::sample`] re-derives the distribution's sampling parameters on every
/// call — for a lognormal that is two logarithms and a square root per draw
/// before any random number is touched. `DistSampler` hoists that work to
/// construction and, for the lognormal, generates normal variates in pairs,
/// keeping the otherwise-discarded second one.
///
/// Draw streams: every shape except the lognormal consumes the RNG exactly as
/// [`Dist::sample`] does and produces bit-identical values. The lognormal uses
/// Marsaglia's polar method and keeps both variates of each accepted pair —
/// roughly 1.3 uniforms and half a `ln`/`sqrt` per draw, and none of
/// Box–Muller's trigonometry — so its stream differs from per-call sampling;
/// the distribution is exact either way. Simulations that must preserve their
/// seeded histories sample through [`Dist::sample`], which is unchanged.
///
/// # Examples
///
/// ```
/// use dias_stochastic::{Dist, DistSampler};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let d = Dist::erlang(4, 2.0);
/// let mut fast = DistSampler::new(&d);
/// let mut a = StdRng::seed_from_u64(7);
/// let mut b = StdRng::seed_from_u64(7);
/// assert_eq!(fast.sample(&mut a), d.sample(&mut b));
/// ```
#[derive(Debug, Clone)]
pub struct DistSampler {
    kind: SamplerKind,
}

#[derive(Debug, Clone)]
enum SamplerKind {
    Constant {
        value: f64,
    },
    Exponential {
        rate: f64,
    },
    Erlang {
        k: u32,
        rate: f64,
    },
    Uniform {
        lo: f64,
        hi: f64,
    },
    LogNormal {
        mu: f64,
        sigma: f64,
        /// `e^μ`, hoisted for the antithetic pair (`e^μ·t`, `e^μ/t`).
        scale: f64,
        /// The second variate of the previous polar pair, if unused.
        spare: Option<f64>,
    },
    HyperExp {
        p1: f64,
        r1: f64,
        r2: f64,
    },
}

impl DistSampler {
    /// Precomputes the sampling parameters of `dist`.
    #[must_use]
    pub fn new(dist: &Dist) -> Self {
        let kind = match *dist {
            Dist::Constant { value } => SamplerKind::Constant { value },
            Dist::Exponential { mean } => SamplerKind::Exponential { rate: 1.0 / mean },
            Dist::Erlang { k, mean } => SamplerKind::Erlang {
                k,
                rate: f64::from(k) / mean,
            },
            Dist::Uniform { lo, hi } => SamplerKind::Uniform { lo, hi },
            Dist::LogNormal { mean, scv } => {
                let sigma2 = (1.0 + scv).ln();
                let mu = mean.ln() - 0.5 * sigma2;
                SamplerKind::LogNormal {
                    mu,
                    sigma: sigma2.sqrt(),
                    scale: mu.exp(),
                    spare: None,
                }
            }
            Dist::HyperExp { mean, scv } => {
                let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
                SamplerKind::HyperExp {
                    p1: p,
                    r1: 2.0 * p / mean,
                    r2: 2.0 * (1.0 - p) / mean,
                }
            }
        };
        DistSampler { kind }
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&mut self, rng: &mut R) -> f64 {
        match &mut self.kind {
            SamplerKind::Constant { value } => *value,
            SamplerKind::Exponential { rate } => sample_exp(rng, *rate),
            SamplerKind::Erlang { k, rate } => (0..*k).map(|_| sample_exp(rng, *rate)).sum(),
            SamplerKind::Uniform { lo, hi } => rng.gen_range(*lo..*hi),
            SamplerKind::LogNormal {
                mu, sigma, spare, ..
            } => {
                let z = match spare.take() {
                    Some(z) => z,
                    None => {
                        // Marsaglia's polar method: one log + one sqrt per
                        // accepted pair, no trigonometry (Box–Muller's
                        // `sin_cos` is the costliest call in the pair).
                        // Acceptance is π/4, so ~2.55 uniforms per pair.
                        let (v1, v2, s) = loop {
                            let v1 = 2.0 * rng.gen::<f64>() - 1.0;
                            let v2 = 2.0 * rng.gen::<f64>() - 1.0;
                            let s = v1 * v1 + v2 * v2;
                            if s < 1.0 && s > 0.0 {
                                break (v1, v2, s);
                            }
                        };
                        let f = (-2.0 * s.ln() / s).sqrt();
                        *spare = Some(v2 * f);
                        v1 * f
                    }
                };
                (*mu + *sigma * z).exp()
            }
            SamplerKind::HyperExp { p1, r1, r2 } => {
                if rng.gen::<f64>() < *p1 {
                    sample_exp(rng, *r1)
                } else {
                    sample_exp(rng, *r2)
                }
            }
        }
    }

    /// Draws an **antithetic pair**: two samples coupled through mirrored
    /// uniforms (`u` and `1 − u`; for the lognormal, `z` and `−z`), each
    /// marginally distributed exactly as [`DistSampler::sample`].
    ///
    /// Because every `Dist` shape here is a monotone transform of its
    /// uniforms, the two halves are negatively correlated, and so is any
    /// componentwise-monotone statistic computed from paired draw vectors
    /// (Hoeffding) — a Monte-Carlo mean over both halves is never looser than
    /// one over the same number of independent draws, while consuming half
    /// the RNG words and transcendentals. This drives the variance-reduced
    /// profiling fits in `dias_models`.
    pub fn sample_antithetic<R: Rng + ?Sized>(&mut self, rng: &mut R) -> (f64, f64) {
        fn exp_pair<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> (f64, f64) {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            (-u.ln() / rate, -(1.0 - u).ln() / rate)
        }
        match &mut self.kind {
            SamplerKind::Constant { value } => (*value, *value),
            SamplerKind::Exponential { rate } => exp_pair(rng, *rate),
            SamplerKind::Erlang { k, rate } => {
                let (mut a, mut b) = (0.0, 0.0);
                for _ in 0..*k {
                    let (x, y) = exp_pair(rng, *rate);
                    a += x;
                    b += y;
                }
                (a, b)
            }
            SamplerKind::Uniform { lo, hi } => {
                let x = rng.gen_range(*lo..*hi);
                (x, *lo + *hi - x)
            }
            SamplerKind::LogNormal {
                sigma,
                scale,
                spare,
                ..
            } => {
                let z = match spare.take() {
                    Some(z) => z,
                    None => {
                        let (v1, v2, s) = loop {
                            let v1 = 2.0 * rng.gen::<f64>() - 1.0;
                            let v2 = 2.0 * rng.gen::<f64>() - 1.0;
                            let s = v1 * v1 + v2 * v2;
                            if s < 1.0 && s > 0.0 {
                                break (v1, v2, s);
                            }
                        };
                        let f = (-2.0 * s.ln() / s).sqrt();
                        *spare = Some(v2 * f);
                        v1 * f
                    }
                };
                // One exp serves both halves: e^{μ+σz} = e^μ·t and
                // e^{μ−σz} = e^μ/t with t = e^{σz}, equal to the direct
                // forms up to an ulp — far below Monte-Carlo resolution.
                let t = (*sigma * z).exp();
                (*scale * t, *scale / t)
            }
            SamplerKind::HyperExp { p1, r1, r2 } => {
                let u: f64 = rng.gen();
                let ra = if u < *p1 { *r1 } else { *r2 };
                let rb = if 1.0 - u < *p1 { *r1 } else { *r2 };
                let w: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
                (-w.ln() / ra, -(1.0 - w).ln() / rb)
            }
        }
    }
}

/// Samples an integer from a Zipf distribution on `{1, …, n}` with exponent `s`,
/// via inverted CDF over precomputed weights.
///
/// For repeated sampling prefer [`ZipfSampler`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler for ranks `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s <= 0`.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "zipf needs n >= 1");
        assert!(s > 0.0, "zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for rank in 1..=n {
            acc += 1.0 / (rank as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has no ranks (never constructed; kept for API
    /// completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a 1-based rank.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) | Err(i) => (i + 1).min(self.cdf.len()),
        }
    }

    /// Probability of rank `r` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `r` is 0 or exceeds the number of ranks.
    #[must_use]
    pub fn pmf(&self, r: usize) -> f64 {
        assert!(r >= 1 && r <= self.cdf.len(), "rank out of bounds");
        if r == 1 {
            self.cdf[0]
        } else {
            self.cdf[r - 1] - self.cdf[r - 2]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn empirical_moments(d: &Dist, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let m2 = xs.iter().map(|x| x * x).sum::<f64>() / n as f64;
        (mean, m2)
    }

    #[test]
    fn moments_match_samples() {
        let cases = [
            Dist::constant(3.0),
            Dist::exponential(2.0),
            Dist::erlang(4, 2.0),
            Dist::uniform(1.0, 5.0),
            Dist::lognormal(2.0, 0.5),
            Dist::hyperexp(2.0, 4.0),
        ];
        for (i, d) in cases.iter().enumerate() {
            let (mean, m2) = empirical_moments(d, 60_000, 100 + i as u64);
            assert!(
                (mean - d.mean()).abs() / d.mean() < 0.03,
                "{d:?}: mean {mean} vs {}",
                d.mean()
            );
            assert!(
                (m2 - d.second_moment()).abs() / d.second_moment() < 0.08,
                "{d:?}: m2 {m2} vs {}",
                d.second_moment()
            );
        }
    }

    #[test]
    fn scaled_preserves_scv() {
        for d in [
            Dist::exponential(1.0),
            Dist::erlang(3, 2.0),
            Dist::lognormal(1.0, 2.0),
        ] {
            let s = d.scaled(0.4);
            assert!((s.mean() - 0.4 * d.mean()).abs() < 1e-12);
            assert!((s.scv() - d.scv()).abs() < 1e-12);
        }
    }

    #[test]
    fn to_ph_matches_moments() {
        for d in [
            Dist::exponential(2.0),
            Dist::erlang(3, 1.5),
            Dist::hyperexp(1.0, 3.0),
            Dist::lognormal(2.0, 0.3),
        ] {
            let ph = d.to_ph();
            assert!(
                (ph.mean() - d.mean()).abs() / d.mean() < 1e-6,
                "{d:?} mean {} vs {}",
                ph.mean(),
                d.mean()
            );
            assert!(
                (ph.scv() - d.scv()).abs() < 0.02 + 1e-6,
                "{d:?} scv {} vs {}",
                ph.scv(),
                d.scv()
            );
        }
    }

    #[test]
    fn dist_sampler_streams_bit_identical_except_lognormal() {
        for d in [
            Dist::constant(3.0),
            Dist::exponential(2.0),
            Dist::erlang(4, 2.0),
            Dist::uniform(1.0, 5.0),
            Dist::hyperexp(2.0, 4.0),
        ] {
            let mut fast = DistSampler::new(&d);
            let mut a = StdRng::seed_from_u64(42);
            let mut b = StdRng::seed_from_u64(42);
            for i in 0..1000 {
                assert_eq!(fast.sample(&mut a), d.sample(&mut b), "{d:?} draw {i}");
            }
            // Same RNG consumption, so the generators stay in lockstep.
            assert_eq!(a, b, "{d:?} rng state diverged");
        }
    }

    #[test]
    fn dist_sampler_lognormal_moments_hold() {
        let d = Dist::lognormal(2.0, 0.5);
        let mut rng = StdRng::seed_from_u64(7);
        let mut fast = DistSampler::new(&d);
        let n = 60_000;
        let xs: Vec<f64> = (0..n).map(|_| fast.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let m2 = xs.iter().map(|x| x * x).sum::<f64>() / n as f64;
        assert!((mean - d.mean()).abs() / d.mean() < 0.03, "mean {mean}");
        assert!(
            (m2 - d.second_moment()).abs() / d.second_moment() < 0.08,
            "m2 {m2}"
        );
    }

    #[test]
    fn zipf_is_heavy_headed() {
        let z = ZipfSampler::new(1000, 1.1);
        let mut rng = StdRng::seed_from_u64(7);
        let n = 50_000;
        let ones = (0..n).filter(|_| z.sample(&mut rng) == 1).count();
        let expect = z.pmf(1);
        let got = ones as f64 / n as f64;
        assert!((got - expect).abs() < 0.01, "{got} vs {expect}");
        // pmf sums to 1.
        let total: f64 = (1..=1000).map(|r| z.pmf(r)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "scv >= 1")]
    fn hyperexp_requires_scv_at_least_one() {
        let _ = Dist::hyperexp(1.0, 0.5);
    }
}
