//! Cached evaluation and sampling of phase-type distributions.
//!
//! Every analytic quantity of a PH distribution funnels through products
//! `α · exp(A t)` — and almost every caller evaluates them *many times* for the
//! same `(α, A)`: quantile bisection, response-time CDFs on a grid of
//! percentiles, accuracy deflators probing drop ratios. [`PhEvaluator`]
//! computes the expensive state once and answers each query from it:
//!
//! * the uniformized matrix `P = I + A/λ` is built a single time
//!   ([`dias_linalg::Uniformized`]);
//! * the Poisson terms are collapsed to *scalars* — `s_k = α P^k 1` for the
//!   survival function and `d_k = α P^k a` for the density — extended lazily
//!   as larger horizons demand more terms, so one `sf`/`pdf`/`cdf` query costs
//!   a short dot product of Poisson weights against cached coefficients, with
//!   no matrix work and no allocation;
//! * the solve vectors `(−A)^{-k} 1` behind overshoot moments are cached per
//!   order.
//!
//! [`PhSampler`] is the sampling-side analogue: it precomputes the exit-rate
//! vector, the cumulative initial distribution and per-phase transition lists
//! so that each draw walks the chain without touching the matrix or the heap.
//! Its random streams are bit-identical to [`Ph::sample`]'s.

use rand::Rng;

use dias_linalg::{dot, sum, Matrix, Uniformized, POISSON_TAIL};

use crate::Ph;

/// Saturation point of [`PhEvaluator::quantile`] (and [`Ph::quantile`]): the
/// log-space bracket search clamps its upper endpoint to this horizon, and if
/// the CDF still has not reached `q` there, the horizon itself is returned.
/// Only distributions of extreme scale (means near `1e12`) or numerically
/// defective representations get that far; every other quantile is bracketed
/// and refined normally.
pub const QUANTILE_SATURATION: f64 = 1e12;

/// A reusable evaluator for one PH distribution's analytic queries.
///
/// Build once (via [`PhEvaluator::new`] or [`Ph::evaluator`]), then query
/// [`sf`](PhEvaluator::sf) / [`cdf`](PhEvaluator::cdf) /
/// [`pdf`](PhEvaluator::pdf) / [`quantile`](PhEvaluator::quantile) /
/// [`sf_grid`](PhEvaluator::sf_grid) /
/// [`overshoot_moment`](PhEvaluator::overshoot_moment) freely — all queries
/// share one cache. Methods take `&mut self` because the cache grows lazily;
/// results are identical no matter the query order.
///
/// [`Ph`]'s own methods are routed through a lazily built, internally shared
/// evaluator, so casual callers get the caching for free; hot loops that want
/// to avoid the synchronization of the shared cache hold their own instance.
///
/// # Examples
///
/// ```
/// use dias_stochastic::Ph;
///
/// let job = Ph::erlang(4, 2.0).unwrap();
/// let mut ev = job.evaluator();
/// let p95 = ev.quantile(0.95);
/// assert!((ev.cdf(p95) - 0.95).abs() < 1e-6);
/// // Grid evaluation shares the same cached Poisson terms.
/// let sf = ev.sf_grid(&[0.5, 1.0, 2.0, 4.0]);
/// assert!(sf.windows(2).all(|w| w[0] >= w[1]));
/// ```
#[derive(Debug, Clone)]
pub struct PhEvaluator {
    alpha: Vec<f64>,
    exit: Vec<f64>,
    mass_at_zero: f64,
    mean: f64,
    uni: Uniformized,
    /// `s_k = α P^k 1` for `k = 0..sums.len()`.
    sums: Vec<f64>,
    /// `d_k = α P^k a` for `k = 0..dots.len()` (same length as `sums`).
    dots: Vec<f64>,
    /// The highest computed power `α P^{sums.len()-1}`.
    vk: Vec<f64>,
    /// Ping-pong scratch for extending `vk`.
    vk_next: Vec<f64>,
    /// Scratch for full-vector applications (overshoot moments).
    acc: Vec<f64>,
    /// `−A`, for extending the cached solve vectors.
    neg_a: Matrix,
    /// `(−A)^{-k} 1` at index `k − 1`, extended on demand.
    solves: Vec<Vec<f64>>,
}

impl PhEvaluator {
    /// Precomputes the evaluator state for `ph`.
    #[must_use]
    pub fn new(ph: &Ph) -> Self {
        let alpha = ph.alpha().to_vec();
        let exit = ph.exit_vector();
        let uni = Uniformized::new(ph.matrix());
        let n = alpha.len();
        let sums = vec![sum(&alpha)];
        let dots = vec![dot(&alpha, &exit)];
        PhEvaluator {
            vk: alpha.clone(),
            vk_next: vec![0.0; n],
            acc: vec![0.0; n],
            neg_a: ph.matrix().scaled(-1.0),
            solves: Vec::new(),
            mass_at_zero: ph.mass_at_zero(),
            mean: ph.mean(),
            alpha,
            exit,
            uni,
            sums,
            dots,
        }
    }

    /// Number of transient phases.
    #[must_use]
    pub fn order(&self) -> usize {
        self.alpha.len()
    }

    /// The distribution's mean (precomputed).
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Probability mass at zero (precomputed).
    #[must_use]
    pub fn mass_at_zero(&self) -> f64 {
        self.mass_at_zero
    }

    /// Extends the cached scalar sequences through power `kmax`.
    fn ensure_powers(&mut self, kmax: usize) {
        while self.sums.len() <= kmax {
            self.uni.matrix().vec_mul_into(&self.vk, &mut self.vk_next);
            std::mem::swap(&mut self.vk, &mut self.vk_next);
            self.sums.push(sum(&self.vk));
            self.dots.push(dot(&self.vk, &self.exit));
        }
    }

    /// Poisson mixture of the cached coefficients: `Σ_k w_k(λt) c_k` where
    /// `c` is `sums` (survival) or `dots` (density).
    fn poisson_mix(&mut self, t: f64, density: bool) -> f64 {
        debug_assert!(t >= 0.0);
        let lt = self.uni.lambda() * t;
        let mut weight = (-lt).exp();
        if weight == 0.0 {
            // exp(-λt) underflowed: every Poisson term is exactly zero, just
            // as in the uncached term-by-term evaluation.
            return 0.0;
        }
        let kmax = dias_linalg::poisson_truncation(lt);
        self.ensure_powers(kmax);
        let coeffs = if density { &self.dots } else { &self.sums };
        let mut acc = weight * coeffs[0];
        let mut cum = weight;
        for (k, &c) in coeffs.iter().enumerate().take(kmax + 1).skip(1) {
            weight *= lt / k as f64;
            if weight > 0.0 {
                acc += weight * c;
                cum += weight;
            }
            if 1.0 - cum < POISSON_TAIL {
                break;
            }
        }
        acc
    }

    /// Survival function `P(X > t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    pub fn sf(&mut self, t: f64) -> f64 {
        assert!(t >= 0.0, "sf requires t >= 0");
        self.poisson_mix(t, false).clamp(0.0, 1.0)
    }

    /// Cumulative distribution function `P(X ≤ t)`.
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    pub fn cdf(&mut self, t: f64) -> f64 {
        1.0 - self.sf(t)
    }

    /// Probability density `f(t) = α e^{At} a`.
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    pub fn pdf(&mut self, t: f64) -> f64 {
        assert!(t >= 0.0, "pdf requires t >= 0");
        self.poisson_mix(t, true).max(0.0)
    }

    /// Survival function on a grid of times, evaluated against the shared
    /// Poisson-coefficient cache. Any ordering is fine: the largest point
    /// extends the cache once and every other point reuses a prefix of it.
    ///
    /// # Panics
    ///
    /// Panics if the grid contains a negative time.
    pub fn sf_grid(&mut self, ts: &[f64]) -> Vec<f64> {
        ts.iter().map(|&t| self.sf(t)).collect()
    }

    /// The `q`-quantile: log-space bracketing (doubling from the mean) then
    /// bisection, all against the shared cache.
    ///
    /// Saturates at [`QUANTILE_SATURATION`]: if the CDF has not reached `q`
    /// by that horizon (distributions of extreme scale or numerically
    /// defective representations), the saturation point itself is returned.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1)`.
    pub fn quantile(&mut self, q: f64) -> f64 {
        assert!((0.0..1.0).contains(&q), "quantile must be in [0,1)");
        if q <= self.mass_at_zero {
            return 0.0;
        }
        // Log-space bracket: [lo, hi] with cdf(lo) < q ≤ cdf(hi).
        let mut lo = 0.0;
        let mut hi = self.mean.max(1e-9);
        while self.cdf(hi) < q {
            lo = hi;
            hi *= 2.0;
            if hi > QUANTILE_SATURATION {
                hi = QUANTILE_SATURATION;
                if self.cdf(hi) < q {
                    return hi; // documented saturation
                }
                break;
            }
        }
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.cdf(mid) < q {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-9 * hi.max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Extends the cached solve vectors `(−A)^{-k} 1` through order `k`.
    fn ensure_solves(&mut self, k: u32) {
        while self.solves.len() < k as usize {
            let prev = match self.solves.last() {
                Some(v) => v.clone(),
                None => vec![1.0; self.order()],
            };
            let next = self
                .neg_a
                .solve(&prev)
                .expect("validated sub-generator is nonsingular");
            self.solves.push(next);
        }
    }

    /// Unconditional overshoot moment `E[((X−t)^+)^k] = k!·(α e^{At})(−A)^{-k} 1`,
    /// with the solve vectors cached across calls.
    ///
    /// # Panics
    ///
    /// Panics if `t < 0`.
    pub fn overshoot_moment(&mut self, t: f64, k: u32) -> f64 {
        if k == 0 {
            return self.sf(t);
        }
        self.ensure_solves(k);
        self.uni.apply_into(&self.alpha, t, &mut self.acc);
        let mut factorial = 1.0;
        for i in 2..=k {
            factorial *= f64::from(i);
        }
        factorial * dot(&self.acc, &self.solves[k as usize - 1])
    }
}

/// A reusable, allocation-free sampler for one PH distribution.
///
/// Precomputes everything a draw needs — the cumulative initial distribution,
/// per-phase sojourn rates, the exit-rate vector and compact per-phase
/// transition lists — so simulating the absorbing chain touches neither the
/// sub-generator matrix nor the heap. For any fixed RNG state the sample
/// stream is **bit-identical** to [`Ph::sample`] (which is routed through a
/// lazily built instance of this type).
///
/// # Examples
///
/// ```
/// use dias_stochastic::{Ph, PhSampler};
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let ph = Ph::erlang(3, 2.0).unwrap();
/// let sampler = PhSampler::new(&ph);
/// let mut a = StdRng::seed_from_u64(7);
/// let mut b = StdRng::seed_from_u64(7);
/// assert_eq!(sampler.sample(&mut a), ph.sample(&mut b));
/// ```
#[derive(Debug, Clone)]
pub struct PhSampler {
    /// Running prefix sums of `α`, in phase order.
    cum_alpha: Vec<f64>,
    /// Per-phase sojourn rate, exit rate and transition-list span, packed so
    /// one phase costs one bounds check in the walk.
    phases: Vec<PhasePlan>,
    /// Concatenated per-phase transition entries `(next phase, rate)`,
    /// excluding exact zeros (skipping them is a floating-point no-op).
    trans: Vec<(u32, f64)>,
    /// `Some((k, rate))` when the chain is a pure Erlang-`k` with sojourn
    /// `rate` per phase, enabling [`PhSampler::sample_fast`]'s
    /// product-of-uniforms shortcut (one `ln` instead of `k`).
    erlang: Option<(u32, f64)>,
}

/// Precomputed per-phase walk state: sojourn rate `−A[i][i]`, exit rate, and
/// the phase's span in [`PhSampler::trans`].
#[derive(Debug, Clone, Copy)]
struct PhasePlan {
    rate: f64,
    exit: f64,
    trans_start: u32,
    trans_end: u32,
    /// When a phase cannot exit (`exit ≤ 0`) and its single transition always
    /// wins the comparison for *every* representable draw, the successor is
    /// predetermined: the walk consumes the transition draw (stream parity)
    /// but skips the dead comparisons. `u32::MAX` means "walk normally".
    det_next: u32,
}

/// Largest value `rng.gen::<f64>()` can produce: `(2^53 − 1) / 2^53`.
const MAX_UNIT_DRAW: f64 = ((1u64 << 53) - 1) as f64 / (1u64 << 53) as f64;

impl PhSampler {
    /// Precomputes the sampler state for `ph`.
    #[must_use]
    pub fn new(ph: &Ph) -> Self {
        let n = ph.order();
        let a = ph.matrix();
        let exit = ph.exit_vector();
        let mut cum_alpha = Vec::with_capacity(n);
        let mut acc = 0.0;
        for &p in ph.alpha() {
            acc += p;
            cum_alpha.push(acc);
        }
        let mut trans = Vec::new();
        let mut phases = Vec::with_capacity(n);
        for i in 0..n {
            let trans_start = trans.len() as u32;
            for j in 0..n {
                if j == i {
                    continue;
                }
                let r = a[(i, j)];
                if r != 0.0 {
                    trans.push((j as u32, r));
                }
            }
            let rate = -a[(i, i)];
            let trans_end = trans.len() as u32;
            // The deterministic-successor shortcut is valid only if the
            // largest possible draw `u = fl(fl(MAX·rate) − exit)` still wins
            // `u < r` — the exact comparison the walk would make.
            let det_next = match trans[trans_start as usize..] {
                [(j, r)] if exit[i] <= 0.0 && (rate * MAX_UNIT_DRAW) - exit[i] < r => j,
                _ => u32::MAX,
            };
            phases.push(PhasePlan {
                rate,
                exit: exit[i],
                trans_start,
                trans_end,
                det_next,
            });
        }
        // Pure-Erlang detection: a point-mass start, a deterministic
        // successor chain with one common sojourn rate, and a tail phase
        // that only exits. Then the walk's k independent exponentials can
        // collapse into one log of a product of uniforms.
        let erlang = 'detect: {
            let alpha = ph.alpha();
            let Some(start) = alpha.iter().position(|&p| p == 1.0) else {
                break 'detect None;
            };
            let rate = phases[start].rate;
            if rate <= 0.0 {
                break 'detect None;
            }
            let mut i = start;
            let mut k = 0u32;
            loop {
                k += 1;
                if k as usize > n {
                    break 'detect None; // cycle: not an Erlang chain
                }
                let plan = phases[i];
                if plan.rate != rate {
                    break 'detect None;
                }
                if plan.det_next != u32::MAX {
                    i = plan.det_next as usize;
                } else if plan.trans_start == plan.trans_end && plan.exit == rate {
                    // Cap the order: the product of k uniforms underflows to
                    // subnormals/zero once Σ −ln(uᵢ) nears 708, which the
                    // clamp in `sample_fast` would turn into real truncation
                    // bias. At k = 256 the sum sits ~28σ below 708, so the
                    // clamp is unreachable in practice; larger chains walk
                    // normally.
                    break 'detect (k <= 256).then_some((k, rate));
                } else {
                    break 'detect None;
                }
            }
        };
        PhSampler {
            cum_alpha,
            phases,
            trans,
            erlang,
        }
    }

    /// Number of transient phases.
    #[must_use]
    pub fn order(&self) -> usize {
        self.phases.len()
    }

    /// The precomputed exit rate of each phase (`a = −A·1`).
    #[must_use]
    pub fn exit_rate(&self, phase: usize) -> f64 {
        self.phases[phase].exit
    }

    /// Draws a sample by simulating the underlying Markov chain, without
    /// allocating.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Choose initial phase (or immediate absorption for deficient mass).
        let u: f64 = rng.gen();
        let mut phase = usize::MAX;
        for (i, &c) in self.cum_alpha.iter().enumerate() {
            if u < c {
                phase = i;
                break;
            }
        }
        if phase == usize::MAX {
            return 0.0; // atom at zero
        }
        let mut time = 0.0;
        loop {
            let plan = self.phases[phase];
            time += crate::sample_exp(rng, plan.rate);
            // Next transition: exit or another phase, proportional to rates.
            if plan.det_next != u32::MAX {
                // Predetermined successor: consume the transition draw to
                // keep the stream position, skip the dead comparisons.
                let _ = rng.gen::<f64>();
                phase = plan.det_next as usize;
                continue;
            }
            let mut u = rng.gen::<f64>() * plan.rate;
            if u < plan.exit {
                return time;
            }
            u -= plan.exit;
            let mut next = phase;
            for &(j, r) in &self.trans[plan.trans_start as usize..plan.trans_end as usize] {
                if u < r {
                    next = j as usize;
                    break;
                }
                u -= r;
            }
            phase = next;
        }
    }

    /// Draws a sample from the same distribution as [`PhSampler::sample`],
    /// trading the bit-pinned stream for speed.
    ///
    /// Two shortcuts over the pinned walk:
    ///
    /// * predetermined successors skip the dead parity draw `sample` must
    ///   spend to keep its stream position, and
    /// * a pure Erlang-`k` chain collapses its `k` exponential sojourns into
    ///   `−ln(u₁⋯u_k)/rate` — one `ln` instead of `k`, the dominant cost of a
    ///   draw on a fast RNG.
    ///
    /// The value stream therefore *differs* from [`PhSampler::sample`] (and
    /// advances the RNG differently); use it where only the distribution
    /// matters, e.g. Monte-Carlo evaluators, not where golden streams are
    /// pinned. Remains deterministic for a fixed RNG state.
    pub fn sample_fast<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if let Some((k, rate)) = self.erlang {
            let mut prod: f64 = rng.gen();
            for _ in 1..k {
                prod *= rng.gen::<f64>();
            }
            // A zero draw (or a vanishing product) would make ln blow up;
            // one clamp to the smallest positive normal keeps the sample
            // finite, exactly as `sample_exp`'s lower range bound does.
            return -prod.max(f64::MIN_POSITIVE).ln() / rate;
        }
        let u: f64 = rng.gen();
        let mut phase = usize::MAX;
        for (i, &c) in self.cum_alpha.iter().enumerate() {
            if u < c {
                phase = i;
                break;
            }
        }
        if phase == usize::MAX {
            return 0.0; // atom at zero
        }
        let mut time = 0.0;
        loop {
            let plan = self.phases[phase];
            time += crate::sample_exp(rng, plan.rate);
            if plan.det_next != u32::MAX {
                phase = plan.det_next as usize;
                continue;
            }
            let mut u = rng.gen::<f64>() * plan.rate;
            if u < plan.exit {
                return time;
            }
            u -= plan.exit;
            let mut next = phase;
            for &(j, r) in &self.trans[plan.trans_start as usize..plan.trans_end as usize] {
                if u < r {
                    next = j as usize;
                    break;
                }
                u -= r;
            }
            phase = next;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_close(a: f64, b: f64, tol: f64) {
        assert!((a - b).abs() < tol, "{a} vs {b} (tol {tol})");
    }

    fn mixture_fixture() -> Ph {
        let cox = Ph::coxian(&[3.0, 1.5, 0.8], &[0.7, 0.4]).unwrap();
        let hyper = Ph::hyperexponential(&[0.35, 0.65], &[0.9, 4.0]).unwrap();
        Ph::mixture(&[0.5, 0.5], &[cox, hyper]).unwrap()
    }

    #[test]
    fn evaluator_matches_ph_queries() {
        let ph = mixture_fixture();
        let mut ev = ph.evaluator();
        for t in [0.0, 0.2, 1.0, 3.5, 20.0] {
            assert_close(ev.sf(t), ph.sf(t), 1e-12);
            assert_close(ev.pdf(t), ph.pdf(t), 1e-12);
        }
        assert_close(
            ev.overshoot_moment(1.2, 1),
            ph.overshoot_moment(1.2, 1),
            1e-12,
        );
        assert_close(
            ev.overshoot_moment(1.2, 2),
            ph.overshoot_moment(1.2, 2),
            1e-12,
        );
        assert_close(ev.overshoot_moment(0.0, 1), ph.mean(), 1e-10);
    }

    #[test]
    fn query_order_does_not_change_results() {
        // The cache grows lazily; a large-t query first must not perturb the
        // small-t answers.
        let ph = mixture_fixture();
        let mut cold = ph.evaluator();
        let mut warm = ph.evaluator();
        let _ = warm.sf(50.0);
        for t in [0.1, 0.9, 4.0] {
            assert_eq!(cold.sf(t), warm.sf(t));
            assert_eq!(cold.pdf(t), warm.pdf(t));
        }
    }

    #[test]
    fn sf_grid_matches_pointwise() {
        let ph = mixture_fixture();
        let mut ev = ph.evaluator();
        let ts = [0.0, 0.3, 0.9, 2.7, 8.1];
        let grid = ev.sf_grid(&ts);
        for (j, &t) in ts.iter().enumerate() {
            assert_eq!(grid[j], ev.sf(t));
        }
    }

    #[test]
    fn quantile_inverts_cdf_on_evaluator() {
        let ph = mixture_fixture();
        let mut ev = ph.evaluator();
        for q in [0.05, 0.5, 0.9, 0.999] {
            let t = ev.quantile(q);
            assert_close(ev.cdf(t), q, 1e-6);
        }
    }

    #[test]
    fn quantile_saturates_at_documented_horizon() {
        // An extreme-scale distribution (mean 1e12) whose 0.9-quantile lies
        // beyond the documented horizon: the search must return exactly the
        // saturation point instead of silently returning an arbitrary
        // power-of-two bracket endpoint as the old bisection did.
        let ph = Ph::exponential(1e-12).unwrap();
        assert!(ph.mean() > QUANTILE_SATURATION / 2.0);
        assert_eq!(ph.evaluator().quantile(0.9), QUANTILE_SATURATION);
        assert_eq!(ph.quantile(0.9), QUANTILE_SATURATION);
        // Quantiles inside the horizon are still refined normally.
        let q01 = ph.quantile(0.01);
        assert!((ph.cdf(q01) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn sampler_is_bit_identical_to_ph_sample() {
        for ph in [
            Ph::coxian(&[3.0, 1.5, 0.8], &[0.7, 0.4]).unwrap(),
            Ph::hyperexponential(&[0.35, 0.65], &[0.9, 4.0]).unwrap(),
            Ph::erlang(4, 2.5).unwrap(),
            mixture_fixture(),
        ] {
            let sampler = PhSampler::new(&ph);
            let mut a = StdRng::seed_from_u64(0xD1A5);
            let mut b = StdRng::seed_from_u64(0xD1A5);
            for _ in 0..500 {
                assert_eq!(sampler.sample(&mut a), ph.sample(&mut b));
            }
        }
    }

    #[test]
    fn sampler_moments_match() {
        let ph = mixture_fixture();
        let sampler = PhSampler::new(&ph);
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let mean = (0..n).map(|_| sampler.sample(&mut rng)).sum::<f64>() / f64::from(n);
        assert_close(mean, ph.mean(), 0.03);
    }

    #[test]
    fn erlang_product_shortcut_detected_only_for_erlang_chains() {
        assert_eq!(
            PhSampler::new(&Ph::erlang(3, 2.0).unwrap()).erlang,
            Some((3, 2.0))
        );
        assert_eq!(
            PhSampler::new(&Ph::exponential(0.7).unwrap()).erlang,
            Some((1, 0.7))
        );
        // Distinct rates, mixtures and branching chains must walk normally.
        assert_eq!(
            PhSampler::new(&Ph::hyperexponential(&[0.35, 0.65], &[0.9, 4.0]).unwrap()).erlang,
            None
        );
        assert_eq!(
            PhSampler::new(&Ph::coxian(&[3.0, 1.5, 0.8], &[0.7, 0.4]).unwrap()).erlang,
            None
        );
        assert_eq!(PhSampler::new(&mixture_fixture()).erlang, None);
        // Chains long enough for the product of uniforms to risk underflow
        // (and hence truncation bias from the ln clamp) must walk normally.
        assert_eq!(PhSampler::new(&Ph::erlang(257, 1.0).unwrap()).erlang, None);
        assert_eq!(
            PhSampler::new(&Ph::erlang(256, 1.0).unwrap()).erlang,
            Some((256, 1.0))
        );
    }

    #[test]
    fn sample_fast_matches_distribution() {
        // Both the Erlang shortcut and the general parity-free walk must
        // reproduce the first two moments of the pinned sampler.
        for ph in [
            Ph::erlang(3, 3.0 / 147.0).unwrap(),
            mixture_fixture(),
            Ph::hyperexponential(&[0.35, 0.65], &[0.9, 4.0]).unwrap(),
        ] {
            let sampler = PhSampler::new(&ph);
            let mut rng = StdRng::seed_from_u64(23);
            let n = 60_000;
            let samples: Vec<f64> = (0..n).map(|_| sampler.sample_fast(&mut rng)).collect();
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let var =
                samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / samples.len() as f64;
            assert_close(mean / ph.mean(), 1.0, 0.02);
            assert_close(var / ph.variance(), 1.0, 0.06);
            assert!(samples.iter().all(|&x| x.is_finite() && x >= 0.0));
        }
    }

    #[test]
    fn sample_fast_is_deterministic_for_fixed_seed() {
        let sampler = PhSampler::new(&Ph::erlang(4, 2.5).unwrap());
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(sampler.sample_fast(&mut a), sampler.sample_fast(&mut b));
        }
    }
}
