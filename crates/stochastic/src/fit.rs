//! Moment-matching fits of phase-type distributions.
//!
//! The paper parameterizes its wave-level model from profiled task execution times
//! ("simple linear regressions", §1; task time samples, §4.3). Profiling yields a
//! mean and variance per stage; these helpers turn such moment pairs into a concrete
//! PH representation:
//!
//! * SCV = 1 → exponential;
//! * SCV < 1 → mixture of two adjacent Erlangs (the classical Tijms fit), matching
//!   both moments exactly;
//! * SCV > 1 → balanced-means two-phase hyperexponential.

use dias_linalg::Matrix;

use crate::Ph;

/// Largest phase count the low-variability Erlang fit will use.
///
/// Matching an SCV of `s < 1` needs `ceil(1/s)` phases, so near-deterministic
/// targets would otherwise produce representations with thousands of phases
/// whose dense matrices make construction and every downstream analysis
/// quadratic-to-cubic in `1/s`. Targets below `1/MAX_ERLANG_PHASES` are fit at
/// the cap: the mean stays exact and the SCV floors at `1/512 ≈ 0.002`, which
/// is already indistinguishable from deterministic for the queueing models
/// built on top.
pub const MAX_ERLANG_PHASES: usize = 512;

/// Fits a PH distribution to a target `mean > 0` and `scv > 0`.
///
/// The result matches the mean exactly and the SCV exactly whenever
/// `scv >= 1/512` (up to floating-point error); smaller SCV targets saturate
/// at a 512-phase Erlang — see [`MAX_ERLANG_PHASES`].
///
/// # Panics
///
/// Panics if `mean <= 0` or `scv <= 0`.
///
/// # Examples
///
/// ```
/// use dias_stochastic::fit::ph_from_mean_scv;
///
/// let ph = ph_from_mean_scv(10.0, 0.4);
/// assert!((ph.mean() - 10.0).abs() < 1e-9);
/// assert!((ph.scv() - 0.4).abs() < 1e-9);
/// ```
#[must_use]
pub fn ph_from_mean_scv(mean: f64, scv: f64) -> Ph {
    assert!(mean > 0.0, "mean must be positive");
    assert!(scv > 0.0, "scv must be positive");
    if (scv - 1.0).abs() < 1e-9 {
        return Ph::exponential(1.0 / mean).expect("positive rate");
    }
    if scv > 1.0 {
        hyperexp_balanced(mean, scv)
    } else {
        erlang_mixture(mean, scv)
    }
}

/// Balanced-means two-phase hyperexponential matching `(mean, scv)` with `scv ≥ 1`.
fn hyperexp_balanced(mean: f64, scv: f64) -> Ph {
    let p = 0.5 * (1.0 + ((scv - 1.0) / (scv + 1.0)).sqrt());
    let r1 = 2.0 * p / mean;
    let r2 = 2.0 * (1.0 - p) / mean;
    Ph::hyperexponential(&[p, 1.0 - p], &[r1, r2]).expect("balanced fit is valid")
}

/// Tijms' mixture of Erlang-(k−1) and Erlang-k matching `(mean, scv)` with
/// `1/k ≤ scv < 1` for the chosen `k = ceil(1/scv)` (capped at
/// [`MAX_ERLANG_PHASES`]; below the cap's SCV the clamp drives `p → 0` and the
/// fit degrades gracefully to a pure Erlang-k with exact mean).
///
/// Rather than a block-diagonal mixture of the two Erlangs (order `2k−1`), this
/// uses the compact order-`k` realization: Erlang-(k−1) is phases `2..k` of the
/// Erlang-k chain, so entering at phase 2 with probability `p` draws the short
/// branch. Half the order means a quarter of the matrix work everywhere the
/// representation is used.
fn erlang_mixture(mean: f64, scv: f64) -> Ph {
    let k = ((1.0 / scv).ceil().max(2.0) as usize).min(MAX_ERLANG_PHASES);
    let kf = k as f64;
    // Mix Erlang(k-1, rate) with prob p and Erlang(k, rate) with prob 1-p.
    let disc = (kf * scv - (kf * (1.0 + scv) - kf * kf * scv).sqrt()) / (1.0 + scv);
    let p = disc.clamp(0.0, 1.0);
    let rate = (kf - p) / mean;
    let mut a = Matrix::zeros(k, k);
    for i in 0..k {
        a[(i, i)] = -rate;
        if i + 1 < k {
            a[(i, i + 1)] = rate;
        }
    }
    let mut alpha = vec![0.0; k];
    alpha[0] = 1.0 - p;
    alpha[1] = p;
    // Bidiagonal chain with a convex two-entry initial vector: valid by
    // construction, so the O(k²) `Ph::new` validation is skipped.
    Ph::raw(alpha, a)
}

/// Ordinary least-squares fit of a line `y = a + b·x`.
///
/// Returns `(intercept, slope)`. Used for the paper's overhead-vs-drop-ratio
/// interpolation and size-vs-time profiling relations.
///
/// # Panics
///
/// Panics if the inputs differ in length, fewer than two points are given, or all
/// `x` values coincide.
#[must_use]
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "x and y must have equal length");
    assert!(xs.len() >= 2, "need at least two points");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|x| (x - mx) * (x - mx)).sum();
    assert!(sxx > 0.0, "x values must not all coincide");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let slope = sxy / sxx;
    (my - slope * mx, slope)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_fit(mean: f64, scv: f64) {
        let ph = ph_from_mean_scv(mean, scv);
        assert!(
            (ph.mean() - mean).abs() / mean < 1e-8,
            "mean {} vs {}",
            ph.mean(),
            mean
        );
        assert!(
            (ph.scv() - scv).abs() < 1e-6,
            "scv {} vs {} (mean {mean})",
            ph.scv(),
            scv
        );
    }

    #[test]
    fn fits_low_variability() {
        for scv in [0.1, 0.25, 0.33, 0.5, 0.75, 0.99] {
            check_fit(7.0, scv);
        }
    }

    #[test]
    fn fits_high_variability() {
        for scv in [1.0, 1.5, 2.0, 4.0, 16.0] {
            check_fit(0.5, scv);
        }
    }

    #[test]
    fn fit_is_deterministic() {
        let a = ph_from_mean_scv(3.0, 0.7);
        let b = ph_from_mean_scv(3.0, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn linear_fit_recovers_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys: Vec<f64> = xs.iter().map(|x| 2.0 + 3.0 * x).collect();
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 2.0).abs() < 1e-12);
        assert!((b - 3.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_least_squares_on_noise() {
        // Symmetric noise around y = 1 + x leaves the fit unchanged.
        let xs = [0.0, 0.0, 2.0, 2.0];
        let ys = [0.5, 1.5, 2.5, 3.5];
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "coincide")]
    fn linear_fit_rejects_degenerate_x() {
        let _ = linear_fit(&[1.0, 1.0], &[0.0, 1.0]);
    }
}
