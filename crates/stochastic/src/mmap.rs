//! Marked arrival processes: the MMAP[K] of the paper's queueing model.
//!
//! A Marked Markovian Arrival Process with `K` classes is parameterized by `K + 1`
//! matrices `(D0, D1, …, DK)`: `D0` holds phase transitions without arrivals and `Dk`
//! the transitions that emit a class-`k` arrival. The simplest non-trivial instance is
//! the marked Poisson process, where each class arrives in an independent Poisson
//! stream — exactly the arrival model used in the paper's experiments.

use rand::Rng;
use serde::{Deserialize, Serialize};

use dias_linalg::{stationary_distribution, Matrix};

use crate::sample_exp;

/// An arrival emitted by a marked process: at `time`, a job of class `class`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MarkedArrival {
    /// Absolute arrival time in seconds.
    pub time: f64,
    /// Zero-based class index (the paper's priority index `k`).
    pub class: usize,
}

/// A marked Poisson process: class `k` arrives at rate `rates[k]`, independently.
///
/// # Examples
///
/// ```
/// use dias_stochastic::MarkedPoisson;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let mp = MarkedPoisson::new(vec![0.9, 0.1]).unwrap();
/// assert!((mp.total_rate() - 1.0).abs() < 1e-12);
/// let mut rng = StdRng::seed_from_u64(1);
/// let a = mp.sample_next(&mut rng, 0.0);
/// assert!(a.time > 0.0 && a.class < 2);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MarkedPoisson {
    rates: Vec<f64>,
}

impl MarkedPoisson {
    /// Creates the process from per-class rates (jobs per second).
    ///
    /// # Errors
    ///
    /// Returns an error string if `rates` is empty, contains a negative rate, or sums
    /// to zero.
    pub fn new(rates: Vec<f64>) -> Result<Self, String> {
        if rates.is_empty() {
            return Err("need at least one class".into());
        }
        if rates.iter().any(|&r| r < 0.0) {
            return Err("rates must be non-negative".into());
        }
        if rates.iter().sum::<f64>() <= 0.0 {
            return Err("total rate must be positive".into());
        }
        Ok(MarkedPoisson { rates })
    }

    /// Per-class arrival rates.
    #[must_use]
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.rates.len()
    }

    /// Aggregate arrival rate.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        self.rates.iter().sum()
    }

    /// Samples the next arrival strictly after `now`.
    pub fn sample_next<R: Rng + ?Sized>(&self, rng: &mut R, now: f64) -> MarkedArrival {
        let total = self.total_rate();
        let dt = sample_exp(rng, total);
        let mut u = rng.gen::<f64>() * total;
        let mut class = self.rates.len() - 1;
        for (k, &r) in self.rates.iter().enumerate() {
            if u < r {
                class = k;
                break;
            }
            u -= r;
        }
        MarkedArrival {
            time: now + dt,
            class,
        }
    }

    /// Generates the first `n` arrivals from time zero.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<MarkedArrival> {
        let mut out = Vec::with_capacity(n);
        let mut now = 0.0;
        for _ in 0..n {
            let a = self.sample_next(rng, now);
            now = a.time;
            out.push(a);
        }
        out
    }

    /// A reusable sampler caching the aggregate rate, for hot simulation
    /// loops. Its streams are bit-identical to [`MarkedPoisson::sample_next`].
    #[must_use]
    pub fn sampler(&self) -> MarkedPoissonSampler<'_> {
        MarkedPoissonSampler {
            rates: &self.rates,
            total: self.total_rate(),
        }
    }

    /// The equivalent [`Mmap`] representation (one phase).
    #[must_use]
    pub fn to_mmap(&self) -> Mmap {
        let total = self.total_rate();
        let d0 = Matrix::from_rows(&[vec![-total]]);
        let dks = self
            .rates
            .iter()
            .map(|&r| Matrix::from_rows(&[vec![r]]))
            .collect();
        Mmap::new(d0, dks).expect("marked Poisson is a valid MMAP")
    }
}

/// Borrowed view of a [`MarkedPoisson`] with the aggregate rate precomputed,
/// so per-arrival sampling does not re-sum the class rates.
///
/// Produced by [`MarkedPoisson::sampler`]; the arithmetic is exactly that of
/// [`MarkedPoisson::sample_next`], so streams are bit-identical.
#[derive(Debug, Clone, Copy)]
pub struct MarkedPoissonSampler<'a> {
    rates: &'a [f64],
    total: f64,
}

impl MarkedPoissonSampler<'_> {
    /// Samples the next arrival strictly after `now`.
    pub fn sample_next<R: Rng + ?Sized>(&self, rng: &mut R, now: f64) -> MarkedArrival {
        let dt = sample_exp(rng, self.total);
        let mut u = rng.gen::<f64>() * self.total;
        let mut class = self.rates.len() - 1;
        for (k, &r) in self.rates.iter().enumerate() {
            if u < r {
                class = k;
                break;
            }
            u -= r;
        }
        MarkedArrival {
            time: now + dt,
            class,
        }
    }
}

/// A Marked Markovian Arrival Process `(D0, D1, …, DK)`.
///
/// Supports correlated and bursty arrival streams (e.g. Markov-modulated Poisson
/// processes marked by class), generalizing [`MarkedPoisson`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mmap {
    d0: Matrix,
    dks: Vec<Matrix>,
}

impl Mmap {
    /// Builds an MMAP after validating that `D = D0 + ΣDk` is a CTMC generator,
    /// `Dk ≥ 0`, and the off-diagonal of `D0` is non-negative.
    ///
    /// # Errors
    ///
    /// Returns a descriptive error string if the matrices are inconsistent.
    pub fn new(d0: Matrix, dks: Vec<Matrix>) -> Result<Self, String> {
        if !d0.is_square() {
            return Err("D0 must be square".into());
        }
        if dks.is_empty() {
            return Err("need at least one class matrix".into());
        }
        let m = d0.rows();
        for (k, dk) in dks.iter().enumerate() {
            if dk.rows() != m || dk.cols() != m {
                return Err(format!("D{} has wrong shape", k + 1));
            }
            for i in 0..m {
                for j in 0..m {
                    if dk[(i, j)] < 0.0 {
                        return Err(format!("D{}({i},{j}) is negative", k + 1));
                    }
                }
            }
        }
        for i in 0..m {
            for j in 0..m {
                if i != j && d0[(i, j)] < 0.0 {
                    return Err(format!("D0({i},{j}) off-diagonal is negative"));
                }
            }
        }
        // Row sums of D must vanish.
        let mut d = d0.clone();
        for dk in &dks {
            d = &d + dk;
        }
        for (i, rs) in d.row_sums().iter().enumerate() {
            if rs.abs() > 1e-8 {
                return Err(format!("row {i} of D sums to {rs}, expected 0"));
            }
        }
        Ok(Mmap { d0, dks })
    }

    /// A one-phase marked Poisson MMAP from per-class rates.
    ///
    /// # Errors
    ///
    /// Propagates the validation errors of [`MarkedPoisson::new`].
    pub fn poisson(rates: Vec<f64>) -> Result<Self, String> {
        Ok(MarkedPoisson::new(rates)?.to_mmap())
    }

    /// A two-state Markov-modulated marked Poisson process: the environment toggles
    /// between states with rates `r01`/`r10`; in state `s` class `k` arrives at
    /// `rates_by_state[s][k]`. Captures the "time-varying arrival rates" the paper
    /// mentions for production traces.
    ///
    /// # Errors
    ///
    /// Returns an error string for non-positive switching rates or empty classes.
    pub fn mmpp2(r01: f64, r10: f64, rates_by_state: [Vec<f64>; 2]) -> Result<Self, String> {
        if r01 <= 0.0 || r10 <= 0.0 {
            return Err("switching rates must be positive".into());
        }
        let k = rates_by_state[0].len();
        if k == 0 || rates_by_state[1].len() != k {
            return Err("class rate vectors must be equal-length and non-empty".into());
        }
        let tot0: f64 = rates_by_state[0].iter().sum();
        let tot1: f64 = rates_by_state[1].iter().sum();
        let d0 = Matrix::from_rows(&[vec![-(r01 + tot0), r01], vec![r10, -(r10 + tot1)]]);
        let dks = (0..k)
            .map(|j| {
                Matrix::from_rows(&[
                    vec![rates_by_state[0][j], 0.0],
                    vec![0.0, rates_by_state[1][j]],
                ])
            })
            .collect();
        Mmap::new(d0, dks)
    }

    /// Number of phases of the modulating chain.
    #[must_use]
    pub fn phases(&self) -> usize {
        self.d0.rows()
    }

    /// Number of classes.
    #[must_use]
    pub fn classes(&self) -> usize {
        self.dks.len()
    }

    /// The matrix `D0`.
    #[must_use]
    pub fn d0(&self) -> &Matrix {
        &self.d0
    }

    /// The matrix `Dk` for 0-based class `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.classes()`.
    #[must_use]
    pub fn dk(&self, k: usize) -> &Matrix {
        &self.dks[k]
    }

    /// Stationary phase distribution of the modulating generator `D`.
    #[must_use]
    pub fn stationary_phase(&self) -> Vec<f64> {
        let mut d = self.d0.clone();
        for dk in &self.dks {
            d = &d + dk;
        }
        stationary_distribution(&d).expect("validated MMAP generator has a stationary vector")
    }

    /// Long-run arrival rate of class `k`: `π D_k 1`.
    #[must_use]
    pub fn class_rate(&self, k: usize) -> f64 {
        let pi = self.stationary_phase();
        let contrib = self.dks[k].row_sums();
        pi.iter().zip(&contrib).map(|(p, c)| p * c).sum()
    }

    /// Aggregate long-run arrival rate.
    #[must_use]
    pub fn total_rate(&self) -> f64 {
        (0..self.classes()).map(|k| self.class_rate(k)).sum()
    }

    /// Creates a stateful sampler starting from the stationary phase distribution.
    pub fn sampler<R: Rng + ?Sized>(&self, rng: &mut R) -> MmapSampler {
        let pi = self.stationary_phase();
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        let mut phase = 0;
        for (i, &p) in pi.iter().enumerate() {
            acc += p;
            if u < acc {
                phase = i;
                break;
            }
        }
        MmapSampler {
            mmap: self.clone(),
            phase,
            now: 0.0,
        }
    }
}

/// Stateful sampler over an [`Mmap`], producing a stream of [`MarkedArrival`]s.
#[derive(Debug, Clone)]
pub struct MmapSampler {
    mmap: Mmap,
    phase: usize,
    now: f64,
}

impl MmapSampler {
    /// Current simulation time of the sampler.
    #[must_use]
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Advances the chain until the next marked arrival and returns it.
    pub fn next_arrival<R: Rng + ?Sized>(&mut self, rng: &mut R) -> MarkedArrival {
        loop {
            let i = self.phase;
            let exit_rate = -self.mmap.d0[(i, i)];
            self.now += sample_exp(rng, exit_rate);
            // Pick among D0 off-diagonal (hidden transition) and Dk rows (arrivals).
            let mut u = rng.gen::<f64>() * exit_rate;
            let m = self.mmap.phases();
            let mut chosen: Option<(usize, Option<usize>)> = None;
            'outer: {
                for j in 0..m {
                    if j == i {
                        continue;
                    }
                    let r = self.mmap.d0[(i, j)];
                    if u < r {
                        chosen = Some((j, None));
                        break 'outer;
                    }
                    u -= r;
                }
                for (k, dk) in self.mmap.dks.iter().enumerate() {
                    for j in 0..m {
                        let r = dk[(i, j)];
                        if u < r {
                            chosen = Some((j, Some(k)));
                            break 'outer;
                        }
                        u -= r;
                    }
                }
            }
            // Numeric slack: default to staying with an arrival of the last class.
            let (next_phase, mark) = chosen.unwrap_or((i, Some(self.mmap.classes() - 1)));
            self.phase = next_phase;
            if let Some(k) = mark {
                return MarkedArrival {
                    time: self.now,
                    class: k,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn marked_poisson_class_frequencies() {
        let mp = MarkedPoisson::new(vec![3.0, 1.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let arrivals = mp.generate(&mut rng, 20_000);
        let class0 = arrivals.iter().filter(|a| a.class == 0).count();
        let frac = class0 as f64 / arrivals.len() as f64;
        assert!((frac - 0.75).abs() < 0.01, "frac {frac}");
        // Inter-arrival mean should be 1/total_rate.
        let mean_gap = arrivals.last().unwrap().time / arrivals.len() as f64;
        assert!((mean_gap - 0.25).abs() < 0.01, "gap {mean_gap}");
    }

    #[test]
    fn marked_poisson_rejects_bad_input() {
        assert!(MarkedPoisson::new(vec![]).is_err());
        assert!(MarkedPoisson::new(vec![-1.0]).is_err());
        assert!(MarkedPoisson::new(vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn poisson_mmap_rates_match() {
        let mmap = Mmap::poisson(vec![0.9, 0.1]).unwrap();
        assert!((mmap.class_rate(0) - 0.9).abs() < 1e-12);
        assert!((mmap.class_rate(1) - 0.1).abs() < 1e-12);
        assert!((mmap.total_rate() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mmpp2_rates_weighted_by_stationary() {
        // Symmetric switching: half time in each state.
        let mmap = Mmap::mmpp2(1.0, 1.0, [vec![2.0], vec![6.0]]).unwrap();
        assert!((mmap.class_rate(0) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn mmpp2_sampler_rate_empirical() {
        let mmap = Mmap::mmpp2(0.5, 1.5, [vec![1.0, 1.0], vec![8.0, 2.0]]).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut sampler = mmap.sampler(&mut rng);
        let n = 40_000;
        let mut counts = [0usize; 2];
        for _ in 0..n {
            let a = sampler.next_arrival(&mut rng);
            counts[a.class] += 1;
        }
        let horizon = sampler.now();
        let rate0 = counts[0] as f64 / horizon;
        let rate1 = counts[1] as f64 / horizon;
        assert!(
            (rate0 - mmap.class_rate(0)).abs() / mmap.class_rate(0) < 0.05,
            "rate0 {rate0} vs {}",
            mmap.class_rate(0)
        );
        assert!(
            (rate1 - mmap.class_rate(1)).abs() / mmap.class_rate(1) < 0.05,
            "rate1 {rate1} vs {}",
            mmap.class_rate(1)
        );
    }

    #[test]
    fn mmap_validation_rejects_bad_matrices() {
        // Negative class matrix entry.
        let d0 = Matrix::from_rows(&[vec![-1.0]]);
        let bad = Matrix::from_rows(&[vec![-0.5]]);
        assert!(Mmap::new(d0.clone(), vec![bad]).is_err());
        // Row sums of D nonzero.
        let d1 = Matrix::from_rows(&[vec![2.0]]);
        assert!(Mmap::new(d0, vec![d1]).is_err());
        assert!(Mmap::mmpp2(0.0, 1.0, [vec![1.0], vec![1.0]]).is_err());
    }

    #[test]
    fn poisson_sampler_and_direct_agree_in_rate() {
        let mmap = Mmap::poisson(vec![2.0]).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = mmap.sampler(&mut rng);
        let n = 20_000;
        for _ in 0..n {
            s.next_arrival(&mut rng);
        }
        let rate = n as f64 / s.now();
        assert!((rate - 2.0).abs() < 0.05, "rate {rate}");
    }
}
