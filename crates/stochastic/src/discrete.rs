//! Discrete distributions over task counts.
//!
//! The paper's models take the number of map and reduce tasks of a priority-`k` job
//! as discrete random variables with pmfs `p_m(t)` and `p_r(u)` supported on
//! `{1, …, N}` (§4.1). [`DiscreteDist`] is that object.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A probability distribution over `{1, …, N}` (1-based support, as in the paper).
///
/// # Examples
///
/// ```
/// use dias_stochastic::DiscreteDist;
///
/// // A job always has exactly 50 tasks:
/// let fixed = DiscreteDist::constant(50);
/// assert_eq!(fixed.max_value(), 50);
/// assert!((fixed.pmf(50) - 1.0).abs() < 1e-12);
/// assert!((fixed.mean() - 50.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiscreteDist {
    /// `probs[i]` is the probability of value `i + 1`.
    probs: Vec<f64>,
}

impl DiscreteDist {
    /// Builds a distribution from weights over `{1, …, weights.len()}`; weights are
    /// normalized.
    ///
    /// # Errors
    ///
    /// Returns an error string if `weights` is empty, contains a negative entry, or
    /// sums to zero.
    pub fn from_weights(weights: &[f64]) -> Result<Self, String> {
        if weights.is_empty() {
            return Err("need at least one weight".into());
        }
        if weights.iter().any(|&w| w < 0.0) {
            return Err("weights must be non-negative".into());
        }
        let total: f64 = weights.iter().sum();
        if total <= 0.0 {
            return Err("weights must not all be zero".into());
        }
        Ok(DiscreteDist {
            probs: weights.iter().map(|w| w / total).collect(),
        })
    }

    /// A point mass at `value`.
    ///
    /// # Panics
    ///
    /// Panics if `value == 0`; the support starts at 1.
    #[must_use]
    pub fn constant(value: usize) -> Self {
        assert!(value >= 1, "support starts at 1");
        let mut probs = vec![0.0; value];
        probs[value - 1] = 1.0;
        DiscreteDist { probs }
    }

    /// Uniform over `{lo, …, hi}`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= lo <= hi`.
    #[must_use]
    pub fn uniform(lo: usize, hi: usize) -> Self {
        assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
        let mut probs = vec![0.0; hi];
        let p = 1.0 / (hi - lo + 1) as f64;
        for entry in probs.iter_mut().take(hi).skip(lo - 1) {
            *entry = p;
        }
        DiscreteDist { probs }
    }

    /// A binomial-like spread: truncated discretized normal around `center` with
    /// the given relative spread, clipped to `{1, …, max}`. Handy for "about 50
    /// partitions, give or take" task counts.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= center <= max` and `spread >= 0`.
    #[must_use]
    pub fn around(center: usize, spread: f64, max: usize) -> Self {
        assert!(center >= 1 && center <= max, "need 1 <= center <= max");
        assert!(spread >= 0.0, "spread must be non-negative");
        if spread == 0.0 {
            let mut d = DiscreteDist::constant(center);
            d.probs.resize(max, 0.0);
            return d;
        }
        let sigma = spread * center as f64;
        let mut weights = vec![0.0; max];
        for (i, w) in weights.iter_mut().enumerate() {
            let x = (i + 1) as f64 - center as f64;
            *w = (-0.5 * (x / sigma) * (x / sigma)).exp();
        }
        DiscreteDist::from_weights(&weights).expect("gaussian weights are valid")
    }

    /// Largest value with positive support (the paper's `N_m`/`N_r`).
    #[must_use]
    pub fn max_value(&self) -> usize {
        self.probs
            .iter()
            .rposition(|&p| p > 0.0)
            .map_or(1, |i| i + 1)
    }

    /// Probability of `value`.
    ///
    /// Returns 0 outside the support range.
    #[must_use]
    pub fn pmf(&self, value: usize) -> f64 {
        if value == 0 || value > self.probs.len() {
            0.0
        } else {
            self.probs[value - 1]
        }
    }

    /// Mean of the distribution.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, p)| (i + 1) as f64 * p)
            .sum()
    }

    /// Expectation of `f(value)` under the distribution.
    pub fn expect<F: Fn(usize) -> f64>(&self, f: F) -> f64 {
        self.probs
            .iter()
            .enumerate()
            .map(|(i, p)| p * f(i + 1))
            .sum()
    }

    /// Iterates over `(value, probability)` pairs with positive probability.
    pub fn support(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.probs
            .iter()
            .enumerate()
            .filter(|(_, &p)| p > 0.0)
            .map(|(i, &p)| (i + 1, p))
    }

    /// Draws a sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let mut acc = 0.0;
        for (i, &p) in self.probs.iter().enumerate() {
            acc += p;
            if u < acc {
                return i + 1;
            }
        }
        self.max_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn from_weights_normalizes() {
        let d = DiscreteDist::from_weights(&[1.0, 3.0]).unwrap();
        assert!((d.pmf(1) - 0.25).abs() < 1e-12);
        assert!((d.pmf(2) - 0.75).abs() < 1e-12);
        assert!((d.mean() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn invalid_weights_rejected() {
        assert!(DiscreteDist::from_weights(&[]).is_err());
        assert!(DiscreteDist::from_weights(&[-1.0, 2.0]).is_err());
        assert!(DiscreteDist::from_weights(&[0.0, 0.0]).is_err());
    }

    #[test]
    fn uniform_support() {
        let d = DiscreteDist::uniform(3, 6);
        assert_eq!(d.max_value(), 6);
        assert_eq!(d.pmf(2), 0.0);
        assert!((d.pmf(4) - 0.25).abs() < 1e-12);
        assert!((d.mean() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn around_is_centered() {
        let d = DiscreteDist::around(50, 0.1, 80);
        assert!((d.mean() - 50.0).abs() < 0.5);
        assert!(d.pmf(50) > d.pmf(40));
        assert!(d.pmf(50) > d.pmf(60));
    }

    #[test]
    fn sampling_matches_pmf() {
        let d = DiscreteDist::from_weights(&[0.2, 0.3, 0.5]).unwrap();
        let mut rng = StdRng::seed_from_u64(21);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[d.sample(&mut rng) - 1] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - d.pmf(i + 1)).abs() < 0.01, "value {}", i + 1);
        }
    }

    #[test]
    fn expectation_functional() {
        let d = DiscreteDist::uniform(1, 3);
        let second_moment = d.expect(|v| (v * v) as f64);
        assert!((second_moment - (1.0 + 4.0 + 9.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn support_iterator_skips_zeros() {
        let d = DiscreteDist::uniform(2, 3);
        let support: Vec<usize> = d.support().map(|(v, _)| v).collect();
        assert_eq!(support, vec![2, 3]);
    }
}
