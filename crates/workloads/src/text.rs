//! Synthetic StackExchange-like text analytics with a real word-count job.
//!
//! The paper's text workload parses XML dumps of 164 StackExchange sites and counts
//! word frequencies per topic. This module generates a synthetic corpus with the
//! same statistical shape — topics, posts wrapped in pseudo-XML, Zipf-distributed
//! vocabulary — and implements the word count as an actual map/reduce computation
//! over partitions, so that dropping map tasks produces *measurable* accuracy loss
//! (Fig. 6), not a modeled one.

use std::collections::HashMap;

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

use dias_des::SeedSequence;
use dias_stochastic::ZipfSampler;

/// Configuration of the synthetic corpus.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Number of topics (the paper uses 164 StackExchange sites).
    pub topics: usize,
    /// Posts generated per topic.
    pub posts_per_topic: usize,
    /// Words per post (fixed count; post lengths hardly matter statistically).
    pub words_per_post: usize,
    /// Vocabulary size per topic.
    pub vocabulary: usize,
    /// Zipf exponent of word frequencies (natural text ≈ 1.0–1.2).
    pub zipf_exponent: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig::paper_fig6()
    }
}

impl CorpusConfig {
    /// The corpus whose accuracy-vs-drop curve calibrates to the paper's Fig. 6
    /// (≈ 8.5% MAPE at θ = 0.1, ≈ 15% at 0.2, ≈ 25–32% at 0.4, ≈ 60% at 0.8 when
    /// measured with [`accuracy_curve`] over 50 partitions and all words).
    #[must_use]
    pub fn paper_fig6() -> Self {
        CorpusConfig {
            topics: 8,
            posts_per_topic: 300,
            words_per_post: 60,
            vocabulary: 3000,
            zipf_exponent: 1.1,
            seed: 7,
        }
    }
}

/// A generated corpus: posts per topic, each wrapped in row-XML like the
/// StackExchange data dumps.
#[derive(Debug, Clone)]
pub struct Corpus {
    topics: Vec<Vec<String>>,
}

impl Corpus {
    /// Generates a corpus.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of the configuration is zero.
    #[must_use]
    pub fn generate(cfg: &CorpusConfig) -> Self {
        assert!(
            cfg.topics > 0 && cfg.posts_per_topic > 0 && cfg.words_per_post > 0,
            "corpus dimensions must be positive"
        );
        assert!(cfg.vocabulary > 0, "vocabulary must be positive");
        let seeds = SeedSequence::new(cfg.seed);
        let zipf = ZipfSampler::new(cfg.vocabulary, cfg.zipf_exponent);
        let topics = (0..cfg.topics)
            .map(|t| {
                let mut rng: StdRng = seeds.stream(&format!("corpus/topic-{t}"));
                (0..cfg.posts_per_topic)
                    .map(|p| {
                        let mut body = String::with_capacity(cfg.words_per_post * 8);
                        for _ in 0..cfg.words_per_post {
                            let rank = zipf.sample(&mut rng);
                            // Word identity: topic-local token derived from rank.
                            body.push_str(&format!("w{rank} "));
                        }
                        format!(
                            "<row Id=\"{p}\" PostTypeId=\"{}\" Body=\"{}\" />",
                            rng.gen_range(1..3),
                            body.trim_end()
                        )
                    })
                    .collect()
            })
            .collect();
        Corpus { topics }
    }

    /// Number of topics.
    #[must_use]
    pub fn topics(&self) -> usize {
        self.topics.len()
    }

    /// Posts of one topic.
    ///
    /// # Panics
    ///
    /// Panics if `topic` is out of range.
    #[must_use]
    pub fn posts(&self, topic: usize) -> &[String] {
        &self.topics[topic]
    }

    /// Splits every topic's posts into `partitions` round-robin partitions — the
    /// RDD partitioning the word-count job maps over.
    #[must_use]
    pub fn partition(&self, partitions: usize) -> Vec<Vec<&str>> {
        assert!(partitions > 0, "need at least one partition");
        let mut out: Vec<Vec<&str>> = vec![Vec::new(); partitions];
        let mut i = 0;
        for topic in &self.topics {
            for post in topic {
                out[i % partitions].push(post.as_str());
                i += 1;
            }
        }
        out
    }

    /// Approximate corpus size in MB (for engine-profile calibration).
    #[must_use]
    pub fn size_mb(&self) -> f64 {
        let bytes: usize = self
            .topics
            .iter()
            .flat_map(|t| t.iter().map(String::len))
            .sum();
        bytes as f64 / 1e6
    }
}

/// The map task of the word-count job: parse the pseudo-XML rows of a partition,
/// extract each `Body`, tokenize and count.
///
/// This is the real computation the paper's map tasks perform ("first parsing the
/// XML to extract the posts of users followed by counting the frequency of words").
#[must_use]
pub fn map_word_count(partition: &[&str]) -> HashMap<String, u64> {
    let mut counts = HashMap::new();
    for row in partition {
        if let Some(body) = extract_attribute(row, "Body") {
            for token in body.split_whitespace() {
                let word = token.trim_matches(|c: char| !c.is_alphanumeric());
                if !word.is_empty() {
                    *counts.entry(word.to_string()).or_insert(0) += 1;
                }
            }
        }
    }
    counts
}

/// The reduce task: merge per-partition counts.
#[must_use]
pub fn reduce_word_counts(parts: Vec<HashMap<String, u64>>) -> HashMap<String, u64> {
    let mut total = HashMap::new();
    for part in parts {
        for (w, c) in part {
            *total.entry(w).or_insert(0) += c;
        }
    }
    total
}

/// Extracts the value of `attr="…"` from a pseudo-XML row.
fn extract_attribute<'a>(row: &'a str, attr: &str) -> Option<&'a str> {
    let needle = format!("{attr}=\"");
    let start = row.find(&needle)? + needle.len();
    let end = row[start..].find('"')? + start;
    Some(&row[start..end])
}

/// Runs the full word-count job over `partitions`, dropping a fraction `theta` of
/// the map tasks (the first `⌈n(1−θ)⌉` are kept, matching the engine's dropper) and
/// scaling the surviving counts by the Horvitz–Thompson factor `n/kept`.
///
/// Returns the estimated word counts.
///
/// # Panics
///
/// Panics if `theta` is outside `[0, 1]` or there are no partitions.
#[must_use]
pub fn word_count_with_drop(partitions: &[Vec<&str>], theta: f64) -> HashMap<String, f64> {
    assert!((0.0..=1.0).contains(&theta), "theta must be in [0,1]");
    assert!(!partitions.is_empty(), "need at least one partition");
    let n = partitions.len();
    let keep = ((n as f64) * (1.0 - theta)).ceil() as usize;
    let mapped: Vec<HashMap<String, u64>> = partitions[..keep]
        .iter()
        .map(|p| map_word_count(p))
        .collect();
    let reduced = reduce_word_counts(mapped);
    let scale = if keep == 0 {
        0.0
    } else {
        n as f64 / keep as f64
    };
    reduced
        .into_iter()
        .map(|(w, c)| (w, c as f64 * scale))
        .collect()
}

/// Mean absolute percentage error of estimated counts against exact counts over the
/// `top_n` most frequent words — the paper's Fig. 6 metric.
///
/// # Panics
///
/// Panics if the exact counts are empty.
#[must_use]
pub fn mean_absolute_pct_error(
    exact: &HashMap<String, u64>,
    estimate: &HashMap<String, f64>,
    top_n: usize,
) -> f64 {
    assert!(!exact.is_empty(), "exact counts must be non-empty");
    let mut words: Vec<(&String, &u64)> = exact.iter().collect();
    words.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
    let take = top_n.min(words.len()).max(1);
    let mut total = 0.0;
    for (w, &c) in words.into_iter().take(take) {
        let est = estimate.get(w).copied().unwrap_or(0.0);
        total += (est - c as f64).abs() / c as f64 * 100.0;
    }
    total / take as f64
}

/// Measures the accuracy-loss curve: MAPE for each drop ratio in `thetas`, over a
/// fresh corpus with `cfg`.
#[must_use]
pub fn accuracy_curve(
    cfg: &CorpusConfig,
    partitions: usize,
    thetas: &[f64],
    top_n: usize,
) -> Vec<(f64, f64)> {
    let corpus = Corpus::generate(cfg);
    let parts = corpus.partition(partitions);
    let exact = reduce_word_counts(parts.iter().map(|p| map_word_count(p)).collect());
    thetas
        .iter()
        .map(|&theta| {
            let est = word_count_with_drop(&parts, theta);
            (theta, mean_absolute_pct_error(&exact, &est, top_n))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_corpus() -> CorpusConfig {
        CorpusConfig {
            topics: 4,
            posts_per_topic: 120,
            words_per_post: 40,
            vocabulary: 500,
            zipf_exponent: 1.1,
            seed: 3,
        }
    }

    #[test]
    fn corpus_has_expected_shape() {
        let c = Corpus::generate(&small_corpus());
        assert_eq!(c.topics(), 4);
        assert_eq!(c.posts(0).len(), 120);
        assert!(c.posts(0)[0].starts_with("<row "));
        assert!(c.size_mb() > 0.0);
    }

    #[test]
    fn corpus_is_deterministic() {
        let a = Corpus::generate(&small_corpus());
        let b = Corpus::generate(&small_corpus());
        assert_eq!(a.posts(2)[5], b.posts(2)[5]);
    }

    #[test]
    fn partitions_cover_all_posts() {
        let c = Corpus::generate(&small_corpus());
        let parts = c.partition(50);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, 4 * 120);
    }

    #[test]
    fn map_extracts_and_counts() {
        let rows = ["<row Id=\"1\" Body=\"hello world hello\" />"];
        let counts = map_word_count(rows.as_slice());
        assert_eq!(counts.get("hello"), Some(&2));
        assert_eq!(counts.get("world"), Some(&1));
        // XML attributes are not counted as words.
        assert_eq!(counts.get("row"), None);
    }

    #[test]
    fn reduce_merges() {
        let a: HashMap<String, u64> = [("x".to_string(), 2)].into();
        let b: HashMap<String, u64> = [("x".to_string(), 3), ("y".to_string(), 1)].into();
        let merged = reduce_word_counts(vec![a, b]);
        assert_eq!(merged.get("x"), Some(&5));
        assert_eq!(merged.get("y"), Some(&1));
    }

    #[test]
    fn zero_drop_is_exact() {
        let c = Corpus::generate(&small_corpus());
        let parts = c.partition(20);
        let exact = reduce_word_counts(parts.iter().map(|p| map_word_count(p)).collect());
        let est = word_count_with_drop(&parts, 0.0);
        let err = mean_absolute_pct_error(&exact, &est, 100);
        assert!(err < 1e-9, "zero drop must be exact, got {err}%");
    }

    #[test]
    fn error_grows_with_drop() {
        let curve = accuracy_curve(&small_corpus(), 20, &[0.0, 0.2, 0.5, 0.8], 100);
        assert!(curve[0].1 < 1e-9);
        assert!(curve[1].1 > 0.0);
        assert!(
            curve[3].1 > curve[1].1,
            "error must grow with theta: {curve:?}"
        );
    }

    #[test]
    fn estimates_are_unbiased_in_aggregate() {
        // The HT estimator preserves total mass in expectation; with Zipf words the
        // total estimated count should be within a few percent of the exact total.
        let c = Corpus::generate(&small_corpus());
        let parts = c.partition(40);
        let exact: u64 = reduce_word_counts(parts.iter().map(|p| map_word_count(p)).collect())
            .values()
            .sum();
        let est: f64 = word_count_with_drop(&parts, 0.5).values().sum();
        let rel = (est - exact as f64).abs() / exact as f64;
        assert!(rel < 0.05, "aggregate relative error {rel}");
    }

    #[test]
    fn extract_attribute_robustness() {
        assert_eq!(
            extract_attribute("<row Body=\"a b\" Id=\"1\"/>", "Body"),
            Some("a b")
        );
        assert_eq!(extract_attribute("<row Id=\"1\"/>", "Body"), None);
        assert_eq!(extract_attribute("garbage", "Body"), None);
    }
}
