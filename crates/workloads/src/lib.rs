//! Workloads for the DiAS reproduction.
//!
//! The paper evaluates on two application families plus trace-shaped job streams;
//! this crate provides all three, with *real computations* where accuracy is
//! measured and engine-simulator profiles where latency is measured:
//!
//! * [`text`] — a synthetic StackExchange-like corpus (topics, pseudo-XML posts,
//!   Zipf vocabulary) and a **real word-count MapReduce job** over its partitions.
//!   Dropping partitions and Horvitz–Thompson-scaling the counts reproduces the
//!   accuracy-vs-drop curve of Fig. 6.
//! * [`graph`] — a synthetic R-MAT web graph with the Google-web-graph's shape and a
//!   **real triangle-count** whose edge sampling mirrors per-stage task dropping
//!   (§5.2.4).
//! * [`profiles`] and [`stream`] — engine job profiles (the Fig. 4 datasets "126"
//!   and "147", the 1117 MB / 473 MB two-priority reference, the three-priority mix,
//!   the GraphX-style triangle job) and Poisson [`JobStream`]s over them, with
//!   profiling-based calibration of arrival rates to a target utilization.
//! * [`faults`] — failure/straggler/autoscaling schedules
//!   ([`dias_engine::FaultTrace`]s) for the chaos harness: crash/repair
//!   renewal at a given MTBF/MTTR, straggler episodes, and a deterministic
//!   scale-down/scale-up square wave.
//!
//! # Examples
//!
//! ```
//! use dias_workloads::reference_two_priority;
//! use dias_core::{Experiment, Policy};
//!
//! let stream = reference_two_priority(0.8, 42);
//! let report = Experiment::new(stream, Policy::non_preemptive(2))
//!     .jobs(60)
//!     .run()
//!     .unwrap();
//! assert!(report.mean_response(1) > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod faults;
pub mod graph;
pub mod profiles;
pub mod stream;
pub mod text;

pub use faults::{autoscaling_trace, slot_failure_trace, straggler_trace};
pub use profiles::{
    dataset_126, dataset_147, equal_size_two_priority, heterogeneous_width_fleet,
    heterogeneous_width_two_priority, inverted_ratio_two_priority, profile_473,
    reference_two_priority, sharded_two_priority, three_priority_stream, triangle_two_priority,
    JobProfile,
};
pub use stream::{profile_execution, JobStream, JobStreamTrace};
