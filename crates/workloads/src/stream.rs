//! Poisson job streams over profiles, with utilization-targeted calibration.

use rand::rngs::StdRng;
use rand::RngCore;

use dias_core::JobSource;
use dias_des::stats::SampleSet;
use dias_des::SeedSequence;
use dias_engine::{ClusterSim, ClusterSpec, EngineEvent, JobInstance};
use dias_stochastic::{sample_exp, DrawTrace, MarkedPoisson, RecordingRng, ReplayRng};

use crate::profiles::JobProfile;

/// Mean execution time of a profile on an otherwise idle cluster — the offline
/// profiling run the paper uses to parameterize models and arrival rates (§4.3).
///
/// Runs `n` independent jobs with the given per-stage `drops` and collects their
/// execution times.
///
/// # Panics
///
/// Panics if `drops` does not match the profile's stage count.
#[must_use]
pub fn profile_execution(
    profile: &JobProfile,
    cluster: &ClusterSpec,
    drops: &[f64],
    n: usize,
    seed: u64,
) -> SampleSet {
    let seeds = SeedSequence::new(seed);
    let mut rng: StdRng = seeds.stream(&format!("profile/{}", profile.name));
    let mut out = SampleSet::new();
    for i in 0..n {
        let spec = profile.spec(i as u64, 0);
        let instance = JobInstance::sample(&spec, &mut rng);
        let mut sim = ClusterSim::new(cluster.clone());
        sim.start_job(&instance, drops)
            .expect("idle engine accepts the job");
        loop {
            match sim.advance().expect("running job yields events") {
                EngineEvent::JobFinished { metrics, .. } => {
                    out.push(metrics.execution_secs);
                    break;
                }
                _ => continue,
            }
        }
    }
    out
}

/// An endless Poisson job stream: class `k` arrives at `rates[k]` and instantiates
/// `profiles[k]`.
///
/// Implements [`JobSource`] for [`dias_core::Experiment`]. Generic over its
/// draw source `R` so the same stream definition runs live ([`StdRng`]),
/// recording ([`RecordingRng`], via [`JobStream::recording`]) or replaying a
/// captured trace ([`ReplayRng`], via [`JobStreamTrace::replay`]) — the
/// common-random-number plumbing behind differential sweeps.
#[derive(Debug, Clone)]
pub struct JobStream<R = StdRng> {
    profiles: Vec<JobProfile>,
    arrivals: MarkedPoisson,
    rng: R,
    now: f64,
    next_id: u64,
}

impl JobStream {
    /// Builds a stream with explicit per-class Poisson rates (jobs/second).
    ///
    /// # Errors
    ///
    /// Returns an error string if lengths mismatch or rates are invalid.
    pub fn with_rates(
        profiles: Vec<JobProfile>,
        rates: Vec<f64>,
        seed: u64,
    ) -> Result<Self, String> {
        if profiles.len() != rates.len() {
            return Err(format!(
                "{} profiles but {} rates",
                profiles.len(),
                rates.len()
            ));
        }
        let arrivals = MarkedPoisson::new(rates)?;
        let seeds = SeedSequence::new(seed);
        Ok(JobStream {
            profiles,
            arrivals,
            rng: seeds.stream("jobstream"),
            now: 0.0,
            next_id: 0,
        })
    }

    /// Builds a stream whose total arrival rate hits `utilization` on `cluster`,
    /// splitting arrivals across classes by `weights`.
    ///
    /// The per-class mean execution times are measured by engine profiling (40 jobs
    /// per class at zero drop), then the total rate solves
    /// `Σ weight_k · rate · E[T_k] = utilization`.
    ///
    /// # Panics
    ///
    /// Panics if inputs are inconsistent (empty, mismatched lengths, non-positive
    /// weights or utilization).
    #[must_use]
    pub fn with_target_utilization(
        profiles: Vec<JobProfile>,
        weights: Vec<f64>,
        cluster: &ClusterSpec,
        utilization: f64,
        seed: u64,
    ) -> Self {
        assert!(!profiles.is_empty(), "need at least one class");
        assert_eq!(profiles.len(), weights.len(), "one weight per class");
        assert!(utilization > 0.0 && utilization < 1.0, "need 0 < util < 1");
        assert!(weights.iter().all(|&w| w > 0.0), "weights must be positive");
        let wsum: f64 = weights.iter().sum();
        let mean_exec: Vec<f64> = profiles
            .iter()
            .map(|p| {
                let drops = vec![0.0; p.stages.len()];
                profile_execution(p, cluster, &drops, 40, seed ^ 0xCAFE).mean()
            })
            .collect();
        let weighted: f64 = weights
            .iter()
            .zip(&mean_exec)
            .map(|(w, m)| w / wsum * m)
            .sum();
        let total_rate = utilization / weighted;
        let rates: Vec<f64> = weights.iter().map(|w| w / wsum * total_rate).collect();
        JobStream::with_rates(profiles, rates, seed).expect("validated inputs")
    }

    /// Wraps the stream's RNG in a [`RecordingRng`] so every arrival/service
    /// draw is captured for later bit-identical replay.
    ///
    /// # Panics
    ///
    /// Panics if jobs were already drawn: a trace pairs sweep points only if
    /// it starts at the beginning of the stream.
    #[must_use]
    pub fn recording(self) -> JobStream<RecordingRng<StdRng>> {
        assert_eq!(
            self.next_id, 0,
            "recording must start before the first job is drawn"
        );
        JobStream {
            profiles: self.profiles,
            arrivals: self.arrivals,
            rng: RecordingRng::new(self.rng),
            now: self.now,
            next_id: self.next_id,
        }
    }
}

impl JobStream<RecordingRng<StdRng>> {
    /// Freezes the recorded draw stream into a replayable [`JobStreamTrace`].
    #[must_use]
    pub fn into_trace(self) -> JobStreamTrace {
        JobStreamTrace {
            profiles: self.profiles,
            rates: self.arrivals.rates().to_vec(),
            trace: self.rng.into_trace(),
        }
    }
}

impl<R> JobStream<R> {
    /// Per-class arrival rates (jobs/second).
    #[must_use]
    pub fn rates(&self) -> &[f64] {
        self.arrivals.rates()
    }

    /// The profiles, indexed by class.
    #[must_use]
    pub fn profiles(&self) -> &[JobProfile] {
        &self.profiles
    }
}

impl<R: RngCore> JobSource for JobStream<R> {
    fn classes(&self) -> usize {
        self.profiles.len()
    }

    fn next_job(&mut self) -> Option<JobInstance> {
        let arrival = self.arrivals.sample_next(&mut self.rng, self.now);
        self.now = arrival.time;
        let id = self.next_id;
        self.next_id += 1;
        let spec = self.profiles[arrival.class].spec(id, arrival.class);
        let mut instance = JobInstance::sample(&spec, &mut self.rng);
        instance.arrival_secs = arrival.time;
        Some(instance)
    }
}

/// A recorded arrival/service draw stream of a [`JobStream`], replayable any
/// number of times.
///
/// Each [`JobStreamTrace::replay`] yields a stream that produces the exact
/// jobs of the recorded run — bit-identical arrivals and task times — and,
/// past the recorded prefix, continues from the source RNG's state, so
/// replicas that consume *more* jobs than the recording stay paired too.
/// Cloning is cheap: the recorded words are shared.
#[derive(Debug, Clone)]
pub struct JobStreamTrace {
    profiles: Vec<JobProfile>,
    rates: Vec<f64>,
    trace: DrawTrace,
}

impl JobStreamTrace {
    /// A fresh replay of the recorded stream from its beginning.
    #[must_use]
    pub fn replay(&self) -> JobStream<ReplayRng> {
        JobStream {
            profiles: self.profiles.clone(),
            arrivals: MarkedPoisson::new(self.rates.clone()).expect("recorded rates are valid"),
            rng: self.trace.replay(),
            now: 0.0,
            next_id: 0,
        }
    }

    /// Number of recorded RNG words.
    #[must_use]
    pub fn len(&self) -> usize {
        self.trace.len()
    }

    /// Returns `true` if nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.trace.is_empty()
    }
}

/// Draws `n` exponential inter-arrival gaps with the given rate — exposed for
/// workload tooling and tests.
#[must_use]
pub fn exponential_gaps(rate: f64, n: usize, seed: u64) -> Vec<f64> {
    let mut rng: StdRng = SeedSequence::new(seed).stream("gaps");
    (0..n).map(|_| sample_exp(&mut rng, rate)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{dataset_147, profile_473};

    #[test]
    fn stream_produces_sorted_arrivals() {
        let mut s = JobStream::with_rates(
            vec![dataset_147(), profile_473()],
            vec![0.9 / 150.0, 0.1 / 150.0],
            3,
        )
        .unwrap();
        let mut last = 0.0;
        for _ in 0..200 {
            let j = s.next_job().unwrap();
            assert!(j.arrival_secs >= last);
            last = j.arrival_secs;
            assert!(j.class() < 2);
        }
    }

    #[test]
    fn class_mix_matches_rates() {
        let mut s =
            JobStream::with_rates(vec![dataset_147(), profile_473()], vec![0.009, 0.001], 9)
                .unwrap();
        let n = 4000;
        let high = (0..n)
            .filter(|_| s.next_job().unwrap().class() == 1)
            .count();
        let frac = high as f64 / n as f64;
        assert!((frac - 0.1).abs() < 0.02, "high fraction {frac}");
    }

    #[test]
    fn utilization_targeting_hits_rho() {
        let cluster = ClusterSpec::paper_reference();
        let s = JobStream::with_target_utilization(
            vec![dataset_147(), profile_473()],
            vec![0.9, 0.1],
            &cluster,
            0.8,
            11,
        );
        // Offered load from the calibrated rates and profiled means.
        let mean_low = profile_execution(&dataset_147(), &cluster, &[0.0, 0.0], 40, 1).mean();
        let mean_high = profile_execution(&profile_473(), &cluster, &[0.0, 0.0], 40, 1).mean();
        let rho = s.rates()[0] * mean_low + s.rates()[1] * mean_high;
        assert!((rho - 0.8).abs() < 0.05, "rho {rho}");
    }

    #[test]
    fn mismatched_inputs_rejected() {
        assert!(JobStream::with_rates(vec![dataset_147()], vec![0.1, 0.2], 0).is_err());
        assert!(JobStream::with_rates(vec![dataset_147()], vec![-0.1], 0).is_err());
    }

    #[test]
    fn profiling_is_deterministic() {
        let cluster = ClusterSpec::paper_reference();
        let a = profile_execution(&profile_473(), &cluster, &[0.0, 0.0], 10, 2);
        let b = profile_execution(&profile_473(), &cluster, &[0.0, 0.0], 10, 2);
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn recorded_stream_replays_bit_identically() {
        let profiles = vec![dataset_147(), profile_473()];
        let rates = vec![0.9 / 150.0, 0.1 / 150.0];
        let mut live = JobStream::with_rates(profiles.clone(), rates.clone(), 21).unwrap();
        let live_jobs: Vec<_> = (0..150).map(|_| live.next_job().unwrap()).collect();

        // Record only the first 100 jobs, then replay 150: the prefix comes
        // from the trace, the rest from the tail snapshot.
        let mut rec = JobStream::with_rates(profiles, rates, 21)
            .unwrap()
            .recording();
        for _ in 0..100 {
            let _ = rec.next_job().unwrap();
        }
        let trace = rec.into_trace();
        assert!(!trace.is_empty());

        for round in 0..2 {
            let mut replay = trace.replay();
            for (i, want) in live_jobs.iter().enumerate() {
                let got = replay.next_job().unwrap();
                assert_eq!(got, *want, "round {round} job {i}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "before the first job")]
    fn recording_rejects_started_streams() {
        let mut s = JobStream::with_rates(vec![dataset_147()], vec![0.01], 3).unwrap();
        let _ = s.next_job();
        let _ = s.recording();
    }

    #[test]
    fn exponential_gaps_have_right_mean() {
        let gaps = exponential_gaps(0.5, 20_000, 7);
        let mean: f64 = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean {mean}");
    }
}
