//! Failure, straggler and autoscaling schedules for chaos experiments.
//!
//! Thin, parameterized front-ends over [`FaultTrace`]'s generators, shaped
//! like the paper-adjacent scenarios the chaos harness sweeps:
//!
//! * [`slot_failure_trace`] — per-slot crash/repair renewal at a given MTBF
//!   and MTTR (exponential up/down periods);
//! * [`straggler_trace`] — per-slot slowdown episodes at a given inter-onset
//!   gap, duration and factor;
//! * [`autoscaling_trace`] — a deterministic square wave draining the top of
//!   the cluster each period and repairing it after the down window — the
//!   "elastic capacity" shape of a scale-down/scale-up loop, with drains (not
//!   kills) so in-flight work finishes first.
//!
//! All three return plain [`FaultTrace`]s: `Arc`-shared, time-sorted, and
//! replayed bit-identically by every sweep point and thread count.

use dias_des::SeedSequence;
use dias_engine::{FaultEvent, FaultKind, FaultTrace};
use dias_stochastic::Ph;

/// Exponential crash/repair renewal per slot: each of the `slots` fails on
/// average every `mtbf_secs` of uptime and returns after an average
/// `mttr_secs`, over `[0, horizon_secs)`.
///
/// # Panics
///
/// Panics if `mtbf_secs` or `mttr_secs` is not a positive finite number.
#[must_use]
pub fn slot_failure_trace(
    slots: usize,
    horizon_secs: f64,
    mtbf_secs: f64,
    mttr_secs: f64,
    seed: u64,
) -> FaultTrace {
    assert!(
        mtbf_secs.is_finite() && mtbf_secs > 0.0,
        "MTBF must be positive"
    );
    assert!(
        mttr_secs.is_finite() && mttr_secs > 0.0,
        "MTTR must be positive"
    );
    let up = Ph::exponential(1.0 / mtbf_secs).expect("positive rate");
    let down = Ph::exponential(1.0 / mttr_secs).expect("positive rate");
    FaultTrace::renewal(slots, horizon_secs, &up, &down, SeedSequence::new(seed))
}

/// Exponential straggler episodes per slot: after an average `gap_secs` of
/// full speed, a slot runs `factor`× slower for an average `duration_secs`,
/// then recovers.
///
/// # Panics
///
/// Panics if `gap_secs` or `duration_secs` is not positive finite, or
/// `factor` is below 1.0 or not finite.
#[must_use]
pub fn straggler_trace(
    slots: usize,
    horizon_secs: f64,
    gap_secs: f64,
    duration_secs: f64,
    factor: f64,
    seed: u64,
) -> FaultTrace {
    assert!(
        gap_secs.is_finite() && gap_secs > 0.0,
        "straggler gap must be positive"
    );
    assert!(
        duration_secs.is_finite() && duration_secs > 0.0,
        "straggler duration must be positive"
    );
    let gap = Ph::exponential(1.0 / gap_secs).expect("positive rate");
    let duration = Ph::exponential(1.0 / duration_secs).expect("positive rate");
    FaultTrace::stragglers(
        slots,
        horizon_secs,
        &gap,
        &duration,
        factor,
        SeedSequence::new(seed),
    )
}

/// A deterministic autoscaling square wave: every `period_secs`, the top
/// `removed` slots of a `total_slots` cluster are drained (in-flight work
/// finishes, no new placements) and repaired `down_secs` later, over
/// `[0, horizon_secs)`. The *highest* slot indices are cycled so the stable
/// bottom of the cluster keeps its schedule regardless of the wave.
///
/// # Panics
///
/// Panics if `removed > total_slots`, any duration is not positive finite,
/// or `down_secs >= period_secs`.
#[must_use]
pub fn autoscaling_trace(
    total_slots: usize,
    removed: usize,
    period_secs: f64,
    down_secs: f64,
    horizon_secs: f64,
) -> FaultTrace {
    assert!(
        removed <= total_slots,
        "cannot remove more slots than exist"
    );
    assert!(
        period_secs.is_finite() && period_secs > 0.0,
        "period must be positive"
    );
    assert!(
        down_secs.is_finite() && down_secs > 0.0 && down_secs < period_secs,
        "down window must be positive and shorter than the period"
    );
    let mut events = Vec::new();
    let mut start = period_secs;
    while start < horizon_secs {
        for slot in total_slots - removed..total_slots {
            events.push(FaultEvent {
                at_secs: start,
                slot,
                kind: FaultKind::Drain,
            });
            let back = start + down_secs;
            if back < horizon_secs {
                events.push(FaultEvent {
                    at_secs: back,
                    slot,
                    kind: FaultKind::Repair,
                });
            }
        }
        start += period_secs;
    }
    FaultTrace::new(events).expect("generated times are finite and non-negative")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn failure_trace_is_reproducible_and_scaled_by_mtbf() {
        let a = slot_failure_trace(20, 2_000.0, 200.0, 50.0, 7);
        let b = slot_failure_trace(20, 2_000.0, 200.0, 50.0, 7);
        assert_eq!(a.events(), b.events());
        let rare = slot_failure_trace(20, 2_000.0, 20_000.0, 50.0, 7);
        assert!(
            rare.len() < a.len(),
            "a 100× MTBF must produce fewer failures ({} vs {})",
            rare.len(),
            a.len()
        );
    }

    #[test]
    fn straggler_trace_only_slows() {
        let t = straggler_trace(8, 1_000.0, 100.0, 30.0, 2.5, 3);
        assert!(!t.is_empty());
        assert!(t
            .events()
            .iter()
            .all(|e| matches!(e.kind, FaultKind::Slow { .. })));
    }

    #[test]
    fn autoscaling_wave_drains_then_repairs_the_top() {
        let t = autoscaling_trace(20, 4, 300.0, 100.0, 1_000.0);
        // Cycles at 300, 600, 900 (repair of the last lands past 1000): the
        // 4 top slots each drain 3 times and repair twice.
        let drains = t
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::Drain)
            .count();
        let repairs = t
            .events()
            .iter()
            .filter(|e| e.kind == FaultKind::Repair)
            .count();
        assert_eq!(drains, 12);
        assert_eq!(repairs, 8);
        assert!(t.events().iter().all(|e| e.slot >= 16));
        // Events interleave in time order: drain at 300 precedes repair 400.
        assert!(t.events().windows(2).all(|w| w[0].at_secs <= w[1].at_secs));
    }

    #[test]
    #[should_panic(expected = "down window")]
    fn autoscaling_rejects_down_longer_than_period() {
        let _ = autoscaling_trace(20, 2, 100.0, 100.0, 500.0);
    }
}
