//! Synthetic web graphs and a real triangle-count job.
//!
//! The paper runs GraphX's triangle count over the SNAP Google web graph (875,713
//! nodes, 5,105,039 edges). This module generates an R-MAT graph with the same
//! skewed degree structure (scaled by default for test speed) and implements the
//! triangle count as a real computation whose per-stage edge sampling mirrors the
//! paper's per-ShuffleMap-stage task dropping (§5.2.4: "task dropping in this case
//! is performed on every ShuffleMap stage", compounding across stages).

use std::collections::HashSet;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Configuration of the R-MAT graph generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphConfig {
    /// Number of nodes (rounded up to a power of two internally).
    pub nodes: usize,
    /// Number of directed edges to generate (self-loops and duplicates removed,
    /// so the final count is slightly lower).
    pub edges: usize,
    /// R-MAT quadrant probabilities (a, b, c); d = 1 − a − b − c.
    pub quadrants: (f64, f64, f64),
    /// Master seed.
    pub seed: u64,
}

impl GraphConfig {
    /// The SNAP Google web graph's scale, as used by the paper.
    #[must_use]
    pub fn google_web() -> Self {
        GraphConfig {
            nodes: 875_713,
            edges: 5_105_039,
            quadrants: (0.57, 0.19, 0.19),
            seed: 13,
        }
    }

    /// A 1:100 scaled version with the same density and skew, fast enough for
    /// tests and repeated accuracy sweeps.
    #[must_use]
    pub fn google_web_scaled() -> Self {
        GraphConfig {
            nodes: 8_757,
            edges: 51_050,
            quadrants: (0.57, 0.19, 0.19),
            seed: 13,
        }
    }
}

/// An undirected graph as a deduplicated edge list over `0..nodes`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    nodes: usize,
    edges: Vec<(u32, u32)>,
}

impl Graph {
    /// Generates an R-MAT graph.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is degenerate (zero nodes/edges or quadrant
    /// probabilities outside the simplex).
    #[must_use]
    pub fn generate(cfg: &GraphConfig) -> Self {
        assert!(cfg.nodes > 1 && cfg.edges > 0, "graph must be non-trivial");
        let (a, b, c) = cfg.quadrants;
        let d = 1.0 - a - b - c;
        assert!(
            a > 0.0 && b > 0.0 && c > 0.0 && d > 0.0,
            "quadrant probabilities must be a valid distribution"
        );
        let scale = (cfg.nodes as f64).log2().ceil() as u32;
        let side = 1u64 << scale;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut seen = HashSet::with_capacity(cfg.edges * 2);
        let mut edges = Vec::with_capacity(cfg.edges);
        let mut attempts = 0usize;
        while edges.len() < cfg.edges && attempts < cfg.edges * 20 {
            attempts += 1;
            let (mut x0, mut x1) = (0u64, side);
            let (mut y0, mut y1) = (0u64, side);
            while x1 - x0 > 1 {
                let u: f64 = rng.gen();
                let (mx, my) = ((x0 + x1) / 2, (y0 + y1) / 2);
                if u < a {
                    x1 = mx;
                    y1 = my;
                } else if u < a + b {
                    x1 = mx;
                    y0 = my;
                } else if u < a + b + c {
                    x0 = mx;
                    y1 = my;
                } else {
                    x0 = mx;
                    y0 = my;
                }
            }
            let (mut u, mut v) = (x0 as u32, y0 as u32);
            if u as usize >= cfg.nodes || v as usize >= cfg.nodes || u == v {
                continue;
            }
            if u > v {
                std::mem::swap(&mut u, &mut v);
            }
            let key = (u64::from(u) << 32) | u64::from(v);
            if seen.insert(key) {
                edges.push((u, v));
            }
        }
        Graph {
            nodes: cfg.nodes,
            edges,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The undirected, deduplicated edges.
    #[must_use]
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Exact triangle count via the node-iterator algorithm over sorted adjacency
    /// sets (each triangle counted once).
    #[must_use]
    pub fn triangles(&self) -> u64 {
        self.triangles_of(&self.edges)
    }

    /// Triangle count over an arbitrary edge subset of this graph.
    fn triangles_of(&self, edges: &[(u32, u32)]) -> u64 {
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); self.nodes];
        for &(u, v) in edges {
            // Orient edges from lower to higher id: every triangle u<v<w is found
            // exactly once, at its lowest vertex.
            adj[u as usize].push(v);
        }
        for list in &mut adj {
            list.sort_unstable();
        }
        let mut count = 0u64;
        for u in 0..self.nodes {
            let nu = &adj[u];
            for (i, &v) in nu.iter().enumerate() {
                let nv = &adj[v as usize];
                // Intersect the tails: w > v among u's neighbors, w among v's.
                let mut a = i + 1;
                let mut b = 0;
                while a < nu.len() && b < nv.len() {
                    match nu[a].cmp(&nv[b]) {
                        std::cmp::Ordering::Less => a += 1,
                        std::cmp::Ordering::Greater => b += 1,
                        std::cmp::Ordering::Equal => {
                            count += 1;
                            a += 1;
                            b += 1;
                        }
                    }
                }
            }
        }
        count
    }

    /// Approximate triangle count with per-stage dropping: each of `stages`
    /// ShuffleMap stages independently keeps a `1−theta` fraction of the edges it
    /// processes, so an edge survives the pipeline with probability
    /// `p = (1−theta)^stages`. The count of triangles found among surviving edges is
    /// scaled by `1/p³` (a triangle needs its three edges to survive).
    ///
    /// Returns `(estimate, relative_error_pct)` against the exact count.
    ///
    /// # Panics
    ///
    /// Panics if `theta` is outside `[0, 1)` or `stages == 0`.
    #[must_use]
    pub fn approximate_triangles(&self, theta: f64, stages: u32, seed: u64) -> (f64, f64) {
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        assert!(stages > 0, "need at least one stage");
        let p = (1.0 - theta).powi(stages as i32);
        let mut rng = StdRng::seed_from_u64(seed);
        let kept: Vec<(u32, u32)> = self
            .edges
            .iter()
            .copied()
            .filter(|_| rng.gen::<f64>() < p)
            .collect();
        let found = self.triangles_of(&kept) as f64;
        let estimate = found / (p * p * p);
        let exact = self.triangles() as f64;
        let rel_err = if exact > 0.0 {
            (estimate - exact).abs() / exact * 100.0
        } else {
            0.0
        };
        (estimate, rel_err)
    }

    /// Splits the edge list into `partitions` round-robin partitions (the edge RDD).
    ///
    /// # Panics
    ///
    /// Panics if `partitions == 0`.
    #[must_use]
    pub fn edge_partitions(&self, partitions: usize) -> Vec<Vec<(u32, u32)>> {
        assert!(partitions > 0, "need at least one partition");
        let mut out = vec![Vec::new(); partitions];
        for (i, &e) in self.edges.iter().enumerate() {
            out[i % partitions].push(e);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> GraphConfig {
        GraphConfig {
            nodes: 512,
            edges: 3000,
            quadrants: (0.57, 0.19, 0.19),
            seed: 5,
        }
    }

    #[test]
    fn generator_respects_bounds() {
        let g = Graph::generate(&small());
        assert!(g.edges().len() > 2000, "got {}", g.edges().len());
        for &(u, v) in g.edges() {
            assert!(u < v, "edges oriented low->high");
            assert!((v as usize) < g.nodes());
        }
    }

    #[test]
    fn generator_is_deterministic() {
        let a = Graph::generate(&small());
        let b = Graph::generate(&small());
        assert_eq!(a.edges()[100], b.edges()[100]);
        assert_eq!(a.triangles(), b.triangles());
    }

    #[test]
    fn rmat_graphs_are_skewed() {
        // R-MAT with a=0.57 concentrates edges on low-id nodes: the max degree
        // should far exceed the average.
        let g = Graph::generate(&small());
        let mut deg = vec![0usize; g.nodes()];
        for &(u, v) in g.edges() {
            deg[u as usize] += 1;
            deg[v as usize] += 1;
        }
        let avg = 2.0 * g.edges().len() as f64 / g.nodes() as f64;
        let max = *deg.iter().max().unwrap() as f64;
        assert!(max > 5.0 * avg, "max {max} vs avg {avg}");
    }

    #[test]
    fn triangle_count_on_known_graph() {
        // K4 has 4 triangles.
        let g = Graph {
            nodes: 4,
            edges: vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)],
        };
        assert_eq!(g.triangles(), 4);
        // Remove one edge: 2 triangles remain.
        let g2 = Graph {
            nodes: 4,
            edges: vec![(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)],
        };
        assert_eq!(g2.triangles(), 2);
    }

    #[test]
    fn rmat_has_triangles() {
        let g = Graph::generate(&small());
        assert!(g.triangles() > 0, "skewed graphs have triangles");
    }

    #[test]
    fn approximation_error_grows_with_drop() {
        let g = Graph::generate(&small());
        let (_, e_small) = g.approximate_triangles(0.02, 6, 1);
        let (_, e_large) = g.approximate_triangles(0.2, 6, 1);
        assert!(
            e_large > e_small,
            "error must grow with per-stage drop: {e_small} vs {e_large}"
        );
    }

    #[test]
    fn approximation_unbiased_at_low_drop() {
        let g = Graph::generate(&GraphConfig {
            nodes: 1024,
            edges: 12_000,
            quadrants: (0.57, 0.19, 0.19),
            seed: 9,
        });
        // Average the estimator over seeds: should land near the exact count.
        let exact = g.triangles() as f64;
        let runs = 12;
        let mean: f64 = (0..runs)
            .map(|s| g.approximate_triangles(0.05, 6, s).0)
            .sum::<f64>()
            / runs as f64;
        let rel = (mean - exact).abs() / exact;
        assert!(rel < 0.15, "estimator bias {rel}");
    }

    #[test]
    fn edge_partitions_cover() {
        let g = Graph::generate(&small());
        let parts = g.edge_partitions(7);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, g.edges().len());
    }
}
