//! Concrete job profiles and the paper's workload scenarios.
//!
//! A [`JobProfile`] turns into a fresh [`JobSpec`] per arrival. Task times are
//! lognormal with a small squared coefficient of variation (0.08 by default):
//! "tasks tend to have fairly similar execution times, leading to an execution in
//! waves" (§4.2) — similar, not identical, which is also what makes task dropping
//! shave execution time smoothly rather than only at whole-wave boundaries.

use serde::{Deserialize, Serialize};

use dias_engine::{ClusterSpec, JobSpec, StageKind, StageSpec};
use dias_stochastic::Dist;

use crate::stream::JobStream;

/// Default squared coefficient of variation of task execution times.
pub const TASK_SCV: f64 = 0.08;

/// A reusable job template for one priority class.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JobProfile {
    /// Human-readable name (dataset id).
    pub name: String,
    /// Input size in MB.
    pub input_mb: f64,
    /// Setup (overhead) distribution.
    pub setup: Dist,
    /// Inter-stage shuffle distribution.
    pub shuffle: Dist,
    /// Data-dependent fraction of the setup (see
    /// [`dias_engine::JobSpec::setup_data_fraction`]).
    pub setup_data_fraction: f64,
    /// Stage templates.
    pub stages: Vec<StageSpec>,
}

impl JobProfile {
    /// A classic two-stage word-count job: `map_tasks` map tasks over the input
    /// partitions, then `reduce_tasks` reduce tasks.
    #[must_use]
    #[allow(clippy::too_many_arguments)] // mirrors the profile's natural parameter list
    pub fn word_count(
        name: &str,
        input_mb: f64,
        map_tasks: usize,
        map_task_mean: f64,
        reduce_tasks: usize,
        reduce_task_mean: f64,
        setup_mean: f64,
        shuffle_mean: f64,
    ) -> Self {
        JobProfile {
            name: name.to_string(),
            input_mb,
            setup: Dist::lognormal(setup_mean, 0.05),
            shuffle: Dist::lognormal(shuffle_mean, 0.05),
            setup_data_fraction: 0.5,
            stages: vec![
                StageSpec::new(
                    StageKind::Map,
                    map_tasks,
                    Dist::lognormal(map_task_mean, TASK_SCV),
                ),
                StageSpec::new(
                    StageKind::Reduce,
                    reduce_tasks,
                    Dist::lognormal(reduce_task_mean, TASK_SCV),
                ),
            ],
        }
    }

    /// A GraphX-style triangle-count job: six ShuffleMap stages and one Result
    /// stage (§5.1: "six ShuffleMap stages and one Result stage").
    #[must_use]
    pub fn triangle_count(
        name: &str,
        input_mb: f64,
        stage_tasks: usize,
        stage_task_mean: f64,
        result_tasks: usize,
        result_task_mean: f64,
    ) -> Self {
        let mut stages: Vec<StageSpec> = (0..6)
            .map(|_| {
                StageSpec::new(
                    StageKind::ShuffleMap,
                    stage_tasks,
                    Dist::lognormal(stage_task_mean, TASK_SCV),
                )
            })
            .collect();
        stages.push(StageSpec::new(
            StageKind::Result,
            result_tasks,
            Dist::lognormal(result_task_mean, TASK_SCV),
        ));
        JobProfile {
            name: name.to_string(),
            input_mb,
            setup: Dist::lognormal(8.0, 0.05),
            shuffle: Dist::lognormal(3.0, 0.05),
            setup_data_fraction: 0.5,
            stages,
        }
    }

    /// Instantiates a [`JobSpec`] for this profile.
    #[must_use]
    pub fn spec(&self, id: u64, class: usize) -> JobSpec {
        let mut b = JobSpec::builder(id, class)
            .input_mb(self.input_mb)
            .setup(self.setup.clone())
            .shuffle(self.shuffle.clone())
            .setup_data_fraction(self.setup_data_fraction);
        for s in &self.stages {
            b = b.stage(s.clone());
        }
        b.build()
    }

    /// Mean total task work (excluding setup/shuffle), in machine-seconds.
    #[must_use]
    pub fn mean_task_work(&self) -> f64 {
        self.stages
            .iter()
            .map(|s| s.tasks as f64 * s.task_work.mean())
            .sum()
    }
}

/// Fig. 4's dataset "147": the 1117 MB StackExchange dump used for low-priority
/// jobs, 50 partitions, ≈ 147 s mean processing time at θ = 0.
#[must_use]
pub fn dataset_147() -> JobProfile {
    JobProfile::word_count("147", 1117.0, 50, 33.4, 10, 12.0, 12.0, 8.0)
}

/// Fig. 4's dataset "126": the 473 MB dump processed by high-priority jobs,
/// ≈ 126 s mean processing time at θ = 0.
///
/// Processing time is strongly sub-linear in data size (fixed per-task and
/// per-stage overheads dominate), which is why the 2.36×-smaller dataset takes
/// 126 s against the 1117 MB dataset's 147 s — exactly the two curves the paper
/// validates in Fig. 4 and then reuses as the high/low classes in Fig. 5.
#[must_use]
pub fn dataset_126() -> JobProfile {
    JobProfile::word_count("126", 473.0, 50, 27.9, 10, 11.0, 11.0, 7.0)
}

/// The 473 MB dataset processed by high-priority jobs in the reference setup —
/// an alias of [`dataset_126`].
#[must_use]
pub fn profile_473() -> JobProfile {
    dataset_126()
}

/// The paper's two-priority reference workload (§5.2.1): low:high arrival ratio
/// 9:1, job sizes 1117 MB / 473 MB, arrival rate calibrated (by engine profiling)
/// to the requested utilization (0.8 in the reference, 0.5 in Fig. 8c).
#[must_use]
pub fn reference_two_priority(utilization: f64, seed: u64) -> JobStream {
    JobStream::with_target_utilization(
        vec![dataset_147(), profile_473()],
        vec![0.9, 0.1],
        &ClusterSpec::paper_reference(),
        utilization,
        seed,
    )
}

/// Sharded variant of the reference workload for the multi-job engine: the
/// same two datasets arrive as *narrow* jobs — the 1117 MB input split into
/// six ≈ 186 MB shards (8 map / 4 reduce tasks each) and the 473 MB input
/// into four ≈ 118 MB shards (4 map / 2 reduce tasks) — so a job's gang
/// occupies well under the cluster's 20 slots and scheduler policies
/// ([`dias_engine::GangBinPack`], [`dias_engine::PriorityPreempt`]) can pack
/// several jobs side by side. Total offered bytes and the 9:1 class ratio
/// match [`reference_two_priority`]; per-task work is unchanged.
#[must_use]
pub fn sharded_two_priority(utilization: f64, seed: u64) -> JobStream {
    let low = JobProfile::word_count("147-shard", 1117.0 / 6.0, 8, 33.4, 4, 12.0, 12.0, 8.0);
    let high = JobProfile::word_count("126-shard", 473.0 / 4.0, 4, 27.9, 2, 11.0, 11.0, 7.0);
    JobStream::with_target_utilization(
        vec![low, high],
        vec![0.9, 0.1],
        &ClusterSpec::paper_reference(),
        utilization,
        seed,
    )
}

/// Heterogeneous-width variant of the sharded workload: the 1117 MB input
/// arrives as four ≈ 279 MB shards of **12** map / 6 reduce tasks (a 12-wide
/// gang) while the 473 MB input keeps its four narrow ≈ 118 MB shards of
/// **4** map / 2 tasks. A 12-wide low gang plus two 4-wide high gangs fill
/// the 20-slot cluster, so per-gang frequency domains genuinely diverge: a
/// sprinting high job accelerates its 4 slots while the wide low neighbour
/// stays at base — and is charged a third of what the wide gang would cost
/// the sprint budget. Total offered bytes, per-task work and the 9:1 class
/// ratio match [`reference_two_priority`].
#[must_use]
pub fn heterogeneous_width_two_priority(utilization: f64, seed: u64) -> JobStream {
    heterogeneous_width_fleet(&ClusterSpec::paper_reference(), utilization, seed)
}

/// [`heterogeneous_width_two_priority`] scaled to an arbitrary `cluster`:
/// the same two job shapes (12-wide low gangs, 4-wide high gangs, 9:1
/// ratio), with the per-class arrival rates calibrated on the paper's
/// 20-slot testbed and then multiplied by the slot ratio, so a 10k-slot
/// federation fleet sees proportionally more traffic at the same per-slot
/// load. On [`ClusterSpec::paper_reference`] the slot ratio is exactly 1 and
/// the stream is bit-identical to the unscaled helper.
#[must_use]
pub fn heterogeneous_width_fleet(cluster: &ClusterSpec, utilization: f64, seed: u64) -> JobStream {
    let profiles = || {
        vec![
            JobProfile::word_count("147-wide", 1117.0 / 4.0, 12, 33.4, 6, 12.0, 12.0, 8.0),
            JobProfile::word_count("126-shard", 473.0 / 4.0, 4, 27.9, 2, 11.0, 11.0, 7.0),
        ]
    };
    let paper = ClusterSpec::paper_reference();
    let reference =
        JobStream::with_target_utilization(profiles(), vec![0.9, 0.1], &paper, utilization, seed);
    let scale = cluster.slots() as f64 / paper.slots() as f64;
    let rates: Vec<f64> = reference.rates().iter().map(|r| r * scale).collect();
    JobStream::with_rates(profiles(), rates, seed).expect("validated inputs")
}

/// Fig. 8a's variant: both priorities process the same (473 MB) dataset.
#[must_use]
pub fn equal_size_two_priority(utilization: f64, seed: u64) -> JobStream {
    JobStream::with_target_utilization(
        vec![profile_473(), profile_473()],
        vec![0.9, 0.1],
        &ClusterSpec::paper_reference(),
        utilization,
        seed,
    )
}

/// Fig. 8b's variant: the arrival ratio between low- and high-priority jobs is
/// inverted to 1:9 (high-priority jobs dominate).
#[must_use]
pub fn inverted_ratio_two_priority(utilization: f64, seed: u64) -> JobStream {
    JobStream::with_target_utilization(
        vec![dataset_147(), profile_473()],
        vec![0.1, 0.9],
        &ClusterSpec::paper_reference(),
        utilization,
        seed,
    )
}

/// The three-priority workload (§5.2.3): total arrival rate 2.3 jobs/min with
/// high-medium-low ratio 1-4-5, small jobs sized so the load is ≈ 80%.
///
/// Job sizes are chosen so the base load is just under 80% *including* the
/// re-execution inflation the preemptive baseline suffers: with half the traffic
/// able to evict the low class, repeat-from-scratch eviction adds ≈ 20% effective
/// load, and the paper's `P` baseline — while badly degraded — is still stable.
#[must_use]
pub fn three_priority_stream(seed: u64) -> JobStream {
    // Weighted mean execution ≈ 18.8 s measured at 2.3 jobs/min ≈ 72% base load,
    // ≈ 87% effective under the preemptive baseline's re-execution waste.
    let low = JobProfile::word_count("3p-low", 200.0, 40, 5.9, 5, 1.8, 2.0, 1.0);
    let mid = JobProfile::word_count("3p-mid", 150.0, 40, 4.8, 5, 1.6, 2.0, 1.0);
    let high = JobProfile::word_count("3p-high", 80.0, 20, 4.4, 5, 1.3, 1.5, 1.0);
    JobStream::with_rates(
        vec![low, mid, high],
        vec![
            2.3 / 60.0 * 0.5, // low: 5 of 10
            2.3 / 60.0 * 0.4, // medium: 4 of 10
            2.3 / 60.0 * 0.1, // high: 1 of 10
        ],
        seed,
    )
    .expect("static rates are valid")
}

/// The graph-analytics workload of §5.3: triangle-count jobs of equal size in both
/// classes, high:low arrival ratio 3:7.
#[must_use]
pub fn triangle_two_priority(utilization: f64, seed: u64) -> JobStream {
    let profile = JobProfile::triangle_count("google-web", 1100.0, 50, 8.0, 20, 4.0);
    JobStream::with_target_utilization(
        vec![profile.clone(), profile],
        vec![0.7, 0.3],
        &ClusterSpec::paper_reference(),
        utilization,
        seed,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::profile_execution;

    #[test]
    fn profiles_build_specs() {
        let p = dataset_147();
        let spec = p.spec(5, 0);
        assert_eq!(spec.stages.len(), 2);
        assert_eq!(spec.stages[0].tasks, 50);
        assert!((spec.input_mb - 1117.0).abs() < 1e-9);
    }

    #[test]
    fn triangle_profile_has_seven_stages() {
        let p = JobProfile::triangle_count("t", 100.0, 50, 8.0, 20, 4.0);
        let spec = p.spec(0, 1);
        assert_eq!(spec.stages.len(), 7);
        assert!(spec.stages[..6]
            .iter()
            .all(|s| s.kind == StageKind::ShuffleMap));
        assert_eq!(spec.stages[6].kind, StageKind::Result);
    }

    #[test]
    fn dataset_147_mean_processing_near_label() {
        let stats = profile_execution(
            &dataset_147(),
            &ClusterSpec::paper_reference(),
            &[0.0, 0.0],
            60,
            3,
        );
        let mean = stats.mean();
        assert!(
            (mean - 147.0).abs() < 15.0,
            "dataset 147 should process in ≈147 s, got {mean}"
        );
    }

    #[test]
    fn dataset_126_mean_processing_near_label() {
        let stats = profile_execution(
            &dataset_126(),
            &ClusterSpec::paper_reference(),
            &[0.0, 0.0],
            60,
            4,
        );
        let mean = stats.mean();
        assert!(
            (mean - 126.0).abs() < 13.0,
            "dataset 126 should process in ≈126 s, got {mean}"
        );
    }

    #[test]
    fn heterogeneous_width_profiles_diverge() {
        use dias_core::JobSource;
        let mut stream = heterogeneous_width_two_priority(0.8, 7);
        // Widths come from the stage with the most tasks: 12 vs 4.
        let mut widths = [0usize; 2];
        for _ in 0..200 {
            let job = stream.next_job().expect("stream is endless");
            let w = job.task_secs.iter().map(Vec::len).max().unwrap();
            widths[job.class()] = widths[job.class()].max(w);
        }
        assert_eq!(widths, [12, 4]);
    }

    #[test]
    fn fleet_stream_scales_arrival_rate_with_cluster_size() {
        use dias_core::JobSource;
        let paper = ClusterSpec::paper_reference();
        let fleet = ClusterSpec {
            workers: paper.workers * 16,
            ..paper.clone()
        };
        let horizon = |mut s: JobStream| {
            (0..400)
                .map(|_| s.next_job().expect("stream is endless").arrival_secs)
                .fold(0.0f64, f64::max)
        };
        let small = horizon(heterogeneous_width_fleet(&paper, 0.8, 7));
        let big = horizon(heterogeneous_width_fleet(&fleet, 0.8, 7));
        // 16× the slots at the same utilization → ≈16× the arrival rate, so
        // the same number of jobs spans a far shorter horizon.
        assert!(
            big < small / 8.0,
            "fleet stream should arrive much faster: {big} vs {small}"
        );
    }

    #[test]
    fn high_priority_profile_is_smaller() {
        let low = profile_execution(
            &dataset_147(),
            &ClusterSpec::paper_reference(),
            &[0.0, 0.0],
            40,
            5,
        );
        let high = profile_execution(
            &profile_473(),
            &ClusterSpec::paper_reference(),
            &[0.0, 0.0],
            40,
            5,
        );
        let ratio = low.mean() / high.mean();
        // 2.36x the data but only ~1.17x the time: fixed overheads dominate.
        assert!(
            ratio > 1.05 && ratio < 1.4,
            "147 s vs 126 s processing-time ratio expected, got {ratio}"
        );
    }
}
