//! Model-based property test: [`EventQueue`] against a naive sorted-`Vec`
//! reference under random push / cancel / reschedule / pop interleavings.
//!
//! The reference model keeps every live event in a flat `Vec` and re-derives
//! the pop order by a full scan, so it is obviously correct (if slow). The
//! indexed heap must agree with it on every observable: pop order (including
//! equal-timestamp FIFO ties and reschedule's pushed-afresh tie semantics),
//! the success/failure of every cancel and reschedule (stale handles must be
//! rejected), and the live-event count after every operation.

use proptest::prelude::*;

use dias_des::{EventHandle, EventQueue, SimTime};

/// One randomly generated operation; indices select among issued handles.
#[derive(Debug, Clone)]
enum Op {
    Push { time_units: u32 },
    Cancel { handle_idx: usize },
    Reschedule { handle_idx: usize, time_units: u32 },
    Pop,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        // Coarse timestamps force plenty of equal-time ties.
        (0u32..50).prop_map(|time_units| Op::Push { time_units }),
        (0usize..200).prop_map(|handle_idx| Op::Cancel { handle_idx }),
        (0usize..200, 0u32..50).prop_map(|(handle_idx, time_units)| Op::Reschedule {
            handle_idx,
            time_units
        }),
        Just(Op::Pop),
    ]
}

/// The naive reference: a `Vec` of live `(time, seq, id)` events.
#[derive(Debug, Default)]
struct NaiveModel {
    live: Vec<(SimTime, u64, u64)>,
    next_seq: u64,
}

impl NaiveModel {
    fn push(&mut self, time: SimTime, id: u64) {
        self.live.push((time, self.next_seq, id));
        self.next_seq += 1;
    }

    fn contains(&self, id: u64) -> bool {
        self.live.iter().any(|&(_, _, i)| i == id)
    }

    fn cancel(&mut self, id: u64) -> bool {
        match self.live.iter().position(|&(_, _, i)| i == id) {
            Some(pos) => {
                self.live.remove(pos);
                true
            }
            None => false,
        }
    }

    /// Mirrors [`EventQueue::reschedule`]: the event keeps its identity but
    /// takes a fresh sequence number, as if newly pushed.
    fn reschedule(&mut self, id: u64, time: SimTime) -> bool {
        if !self.cancel(id) {
            return false;
        }
        self.push(time, id);
        true
    }

    fn pop(&mut self) -> Option<(SimTime, u64)> {
        let pos = self
            .live
            .iter()
            .enumerate()
            .min_by_key(|(_, &(t, s, _))| (t, s))
            .map(|(pos, _)| pos)?;
        let (t, _, id) = self.live.remove(pos);
        Some((t, id))
    }
}

fn run_scenario(ops: &[Op]) {
    let mut queue: EventQueue<u64> = EventQueue::new();
    let mut model = NaiveModel::default();
    // Every handle ever issued, including fired/cancelled ones, so the
    // generated indices regularly hit stale handles.
    let mut handles: Vec<(EventHandle, u64)> = Vec::new();
    let mut next_id = 0u64;

    for op in ops {
        match *op {
            Op::Push { time_units } => {
                let t = SimTime::from_secs(f64::from(time_units));
                let id = next_id;
                next_id += 1;
                let h = queue.push(t, id);
                model.push(t, id);
                handles.push((h, id));
            }
            Op::Cancel { handle_idx } => {
                if handles.is_empty() {
                    continue;
                }
                let (h, id) = handles[handle_idx % handles.len()];
                let expect = model.cancel(id);
                assert_eq!(
                    queue.cancel(h),
                    expect,
                    "cancel of event {id} disagrees with the model"
                );
            }
            Op::Reschedule {
                handle_idx,
                time_units,
            } => {
                if handles.is_empty() {
                    continue;
                }
                let (h, id) = handles[handle_idx % handles.len()];
                let t = SimTime::from_secs(f64::from(time_units));
                let expect = model.reschedule(id, t);
                assert_eq!(
                    queue.reschedule(h, t),
                    expect,
                    "reschedule of event {id} disagrees with the model"
                );
            }
            Op::Pop => {
                let got = queue.pop();
                let want = model.pop();
                assert_eq!(got, want, "pop order diverged from the model");
            }
        }
        assert_eq!(queue.len(), model.live.len(), "live counts diverged");
        assert_eq!(
            queue.peek_time(),
            model
                .live
                .iter()
                .map(|&(t, s, _)| (t, s))
                .min()
                .map(|(t, _)| t)
        );
    }

    // Drain: the remaining pop order must match exactly, and every issued
    // handle must be stale afterwards.
    while let Some(want) = model.pop() {
        assert_eq!(queue.pop(), Some(want), "drain order diverged");
    }
    assert!(queue.is_empty());
    assert_eq!(queue.pop(), None);
    for &(h, id) in &handles {
        assert!(
            !queue.cancel(h),
            "handle of event {id} must be stale after the drain"
        );
        assert!(!queue.reschedule(h, SimTime::ZERO));
        assert!(!model.contains(id));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn indexed_heap_matches_naive_model(ops in prop::collection::vec(arb_op(), 1..250)) {
        run_scenario(&ops);
    }
}

/// A deterministic dense-tie scenario: many pushes at one timestamp, mixed
/// with reschedules onto the same timestamp, must interleave exactly like the
/// model (reschedule = pushed afresh).
#[test]
fn equal_timestamp_fifo_with_reschedules() {
    let t = 7u32;
    let mut ops = Vec::new();
    for i in 0..40 {
        ops.push(Op::Push { time_units: t });
        if i % 3 == 0 {
            ops.push(Op::Reschedule {
                handle_idx: i,
                time_units: t,
            });
        }
        if i % 5 == 0 {
            ops.push(Op::Pop);
        }
    }
    run_scenario(&ops);
}
