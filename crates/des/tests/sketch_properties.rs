//! Property suite for the Greenwald–Khanna quantile sketch against the exact
//! [`SampleSet`] backend (ISSUE 9 satellite).
//!
//! The contract under test is the ε rank guarantee: for a stream of `n`
//! values, `sketch.quantile(q)` must return a value whose *rank* in the
//! sorted stream is within `εn` of `⌈qn⌉`. That is checked by bracketing —
//! the returned value must lie between the order statistics at ranks
//! `⌈(q−ε)n⌉` and `⌊(q+ε)n⌋` — which is the guarantee itself, not a looser
//! "close in value" proxy (value distance can be huge in a heavy tail even
//! when the rank is dead on). Streams cover the shapes the soak driver
//! actually produces (phase-type service/response times, lognormal), plus
//! the adversarial pre-sorted orders that historically break naive
//! compaction schemes. On top of accuracy: merge neutrality/associativity,
//! and the O((1/ε)·log(εN)) node bound at N = 10⁶.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use dias_des::stats::{GkSketch, SampleSet, SampleStats, StreamingSummary};

const EPS: f64 = 0.01;

/// Quantiles probed on every stream, extremes included.
const QS: [f64; 7] = [0.0, 0.01, 0.25, 0.5, 0.95, 0.99, 1.0];

/// Asserts the ε rank guarantee of `sketch` against the exact stream: the
/// value returned for each probed quantile must lie between the order
/// statistics at ranks `⌈(q−ε)n⌉` and `⌊(q+ε)n⌋` (1-based, clamped).
fn assert_rank_bracket(sketch: &GkSketch, xs: &[f64], eps: f64, label: &str) {
    let n = xs.len();
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for q in QS {
        let got = sketch.quantile(q);
        let rank = (q * n as f64).ceil().max(1.0) as usize;
        let lo_rank = ((rank as f64 - eps * n as f64).ceil().max(1.0)) as usize;
        let hi_rank = ((rank as f64 + eps * n as f64).floor() as usize).clamp(1, n);
        let lo = sorted[lo_rank - 1];
        let hi = sorted[hi_rank - 1];
        assert!(
            (lo..=hi).contains(&got),
            "{label}: q={q} returned {got}, outside rank bracket [{lo}, {hi}] \
             (ranks {lo_rank}..={hi_rank} of n={n})"
        );
    }
}

/// Lognormal(μ, σ) via Box–Muller — the heavy-tailed response-time shape.
fn lognormal(rng: &mut StdRng, mu: f64, sigma: f64) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    (mu + sigma * z).exp()
}

/// Phase-type sample: a 40/60 mixture of Erlang-3(rate 2) and a
/// two-branch hyperexponential (rates 0.5 and 5.0) — one squared-CV < 1
/// branch, one > 1, like the paper's fitted service-time models.
fn phase_type(rng: &mut StdRng) -> f64 {
    if rng.gen::<f64>() < 0.4 {
        // Erlang-3: sum of three exponentials at rate 2.
        -(rng.gen_range(f64::MIN_POSITIVE..1.0).ln()
            + rng.gen_range(f64::MIN_POSITIVE..1.0).ln()
            + rng.gen_range(f64::MIN_POSITIVE..1.0).ln())
            / 2.0
    } else {
        let rate = if rng.gen::<f64>() < 0.7 { 5.0 } else { 0.5 };
        -rng.gen_range(f64::MIN_POSITIVE..1.0).ln() / rate
    }
}

fn sketch_of(xs: &[f64], eps: f64) -> GkSketch {
    let mut s = GkSketch::with_epsilon(eps);
    for &x in xs {
        s.push(x);
    }
    s
}

#[test]
fn sketch_tracks_exact_quantiles_on_phase_type_stream() {
    let mut rng = StdRng::seed_from_u64(901);
    let xs: Vec<f64> = (0..50_000).map(|_| phase_type(&mut rng)).collect();
    let sketch = sketch_of(&xs, EPS);
    assert_eq!(sketch.count(), xs.len() as u64);
    assert_rank_bracket(&sketch, &xs, EPS, "phase-type");
}

#[test]
fn sketch_tracks_exact_quantiles_on_lognormal_stream() {
    let mut rng = StdRng::seed_from_u64(902);
    let xs: Vec<f64> = (0..50_000).map(|_| lognormal(&mut rng, 1.0, 1.5)).collect();
    let sketch = sketch_of(&xs, EPS);
    assert_rank_bracket(&sketch, &xs, EPS, "lognormal");
}

#[test]
fn sketch_survives_adversarial_sorted_orders() {
    let n = 30_000usize;
    let ascending: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let descending: Vec<f64> = (0..n).rev().map(|i| i as f64).collect();
    // Organ pipe: up then down, every value twice — maximal churn at the
    // compaction frontier.
    let organ: Vec<f64> = (0..n)
        .map(|i| if i < n / 2 { i as f64 } else { (n - i) as f64 })
        .collect();
    for (label, xs) in [
        ("ascending", &ascending),
        ("descending", &descending),
        ("organ-pipe", &organ),
    ] {
        let sketch = sketch_of(xs, EPS);
        assert_rank_bracket(&sketch, xs, EPS, label);
    }
}

#[test]
fn sketch_accuracy_holds_at_tighter_epsilon() {
    let mut rng = StdRng::seed_from_u64(903);
    let xs: Vec<f64> = (0..40_000).map(|_| phase_type(&mut rng)).collect();
    let sketch = sketch_of(&xs, 0.001);
    assert_rank_bracket(&sketch, &xs, 0.001, "phase-type eps=1e-3");
}

#[test]
fn merge_with_empty_is_bitwise_neutral() {
    let mut rng = StdRng::seed_from_u64(904);
    let xs: Vec<f64> = (0..5_000).map(|_| lognormal(&mut rng, 0.0, 1.0)).collect();
    let reference = sketch_of(&xs, EPS);

    // Non-empty ← empty: nothing may change, bit for bit.
    let mut merged = reference.clone();
    merged.merge(&GkSketch::with_epsilon(EPS));
    assert_eq!(merged, reference);

    // Empty ← non-empty: adopts the other side wholesale (post-flush).
    let mut empty = GkSketch::with_epsilon(EPS);
    empty.merge(&reference);
    assert_eq!(empty.count(), reference.count());
    for q in QS {
        assert_eq!(empty.quantile(q), reference.quantile(q));
    }
}

#[test]
fn merge_preserves_rank_guarantee_and_is_order_insensitive() {
    let mut rng = StdRng::seed_from_u64(905);
    // Three disjoint shards with very different supports, so a sloppy merge
    // shows up immediately.
    let a: Vec<f64> = (0..8_000).map(|_| phase_type(&mut rng)).collect();
    let b: Vec<f64> = (0..12_000).map(|_| lognormal(&mut rng, 2.0, 0.5)).collect();
    let c: Vec<f64> = (0..4_000).map(|_| rng.gen::<f64>() * 0.01).collect();
    let mut pooled = a.clone();
    pooled.extend_from_slice(&b);
    pooled.extend_from_slice(&c);

    let (sa, sb, sc) = (sketch_of(&a, EPS), sketch_of(&b, EPS), sketch_of(&c, EPS));

    // (a ∪ b) ∪ c and a ∪ (b ∪ c): both associations must hold the pooled
    // rank guarantee. (GK merge is ε-preserving, not bitwise-canonical, so
    // the associativity claim is on the guarantee, not tuple equality.)
    let mut left = sa.clone();
    left.merge(&sb);
    left.merge(&sc);
    let mut bc = sb.clone();
    bc.merge(&sc);
    let mut right = sa.clone();
    right.merge(&bc);

    assert_eq!(left.count(), pooled.len() as u64);
    assert_eq!(right.count(), pooled.len() as u64);
    assert_rank_bracket(&left, &pooled, EPS, "merge (a∪b)∪c");
    assert_rank_bracket(&right, &pooled, EPS, "merge a∪(b∪c)");
}

#[test]
fn node_count_stays_logarithmic_at_one_million() {
    let n: usize = 1_000_000;
    let mut rng = StdRng::seed_from_u64(906);
    let mut sketch = GkSketch::with_epsilon(EPS);
    for _ in 0..n {
        sketch.push(phase_type(&mut rng));
    }
    assert_eq!(sketch.count(), n as u64);
    // GK space bound: (11 / 2ε) · log2(2εn) tuples (Greenwald & Khanna 2001,
    // Thm 1). At ε = 0.01, n = 10⁶ that is 550 · log2(20000) ≈ 7860 — over
    // three orders of magnitude under the raw stream.
    let bound = (11.0 / (2.0 * EPS)) * (2.0 * EPS * n as f64).log2();
    assert!(
        (sketch.nodes() as f64) <= bound,
        "nodes {} exceed GK bound {:.0} at n={n}",
        sketch.nodes(),
        bound
    );
    // And the guarantee still holds at full scale (spot quantiles against
    // the sorted stream would need the raw data; re-generate it instead).
    let mut rng = StdRng::seed_from_u64(906);
    let xs: Vec<f64> = (0..n).map(|_| phase_type(&mut rng)).collect();
    assert_rank_bracket(&sketch, &xs, EPS, "n=1e6 phase-type");
}

#[test]
fn streaming_summary_agrees_with_exact_backend_through_trait() {
    // The soak records through `SampleStats`; drive both backends through
    // the trait and compare — moments exactly (same Welford fold is not
    // guaranteed vs naive sums, so compare within float slop), quantiles by
    // rank bracket.
    let mut rng = StdRng::seed_from_u64(907);
    let xs: Vec<f64> = (0..20_000).map(|_| lognormal(&mut rng, 0.5, 1.0)).collect();
    let mut exact = SampleSet::new();
    let mut streaming = StreamingSummary::with_epsilon(EPS);
    for &x in &xs {
        SampleStats::push(&mut exact, x);
        SampleStats::push(&mut streaming, x);
    }
    assert_eq!(streaming.count(), exact.count());
    assert!((streaming.mean() - exact.mean()).abs() < 1e-9 * exact.mean().abs());
    assert!((streaming.variance() - exact.variance()).abs() < 1e-6 * exact.variance());
    assert_eq!(streaming.max(), exact.max());
    assert_rank_bracket(streaming.sketch(), &xs, EPS, "summary-vs-exact");
    assert!(streaming.live_nodes() < xs.len() / 10);
}
