//! Discrete-event simulation kernel used by every simulator in the DiAS reproduction.
//!
//! The crate provides four small building blocks:
//!
//! * [`SimTime`] — a totally-ordered simulation timestamp in seconds.
//! * [`EventQueue`] — a cancellable priority queue of timed events with FIFO
//!   tie-breaking, the heart of every event loop in the workspace.
//! * [`SeedSequence`] — deterministic derivation of independent RNG streams from a
//!   single experiment seed, so every component of a simulation draws from its own
//!   stream and results are reproducible and insensitive to event interleaving.
//! * [`stats`] — statistics collectors: running moments, sample sets with exact
//!   percentiles, time-weighted integrals and histograms.
//!
//! # Examples
//!
//! A tiny M/D/1 queue simulated with the kernel:
//!
//! ```
//! use dias_des::{EventQueue, SimTime};
//!
//! #[derive(Debug)]
//! enum Ev { Arrival, Departure }
//!
//! let mut q = EventQueue::new();
//! q.push(SimTime::from_secs(0.0), Ev::Arrival);
//! q.push(SimTime::from_secs(1.0), Ev::Departure);
//! let (t, ev) = q.pop().unwrap();
//! assert_eq!(t, SimTime::ZERO);
//! assert!(matches!(ev, Ev::Arrival));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod queue;
mod rng;
pub mod stats;
mod time;

pub use queue::{EventHandle, EventQueue};
pub use rng::SeedSequence;
pub use time::SimTime;
