//! Deterministic derivation of independent RNG streams.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Derives independent, reproducible RNG streams from a single experiment seed.
///
/// Every stochastic component of a simulation (arrivals per class, task-time sampling,
/// drop selection, ...) should draw from its own stream, keyed by a stable label.
/// This keeps results reproducible under refactoring: adding a new consumer does not
/// perturb the draws seen by existing ones.
///
/// Streams are derived with a SplitMix64 hash of the master seed and the label, the
/// standard construction for seed derivation.
///
/// # Examples
///
/// ```
/// use dias_des::SeedSequence;
/// use rand::Rng;
///
/// let seeds = SeedSequence::new(42);
/// let mut a = seeds.stream("arrivals/class-0");
/// let mut b = seeds.stream("service-times");
/// let x: f64 = a.gen();
/// let y: f64 = b.gen();
/// // Streams are independent but reproducible:
/// let mut a2 = SeedSequence::new(42).stream("arrivals/class-0");
/// assert_eq!(x, a2.gen::<f64>());
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence rooted at `master`.
    #[must_use]
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// Returns the master seed this sequence was created with.
    #[must_use]
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derives the sub-seed for `label` without constructing an RNG.
    #[must_use]
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = self.master ^ 0x9e37_79b9_7f4a_7c15;
        for &b in label.as_bytes() {
            h ^= u64::from(b);
            h = splitmix64(h);
        }
        splitmix64(h)
    }

    /// Constructs a fresh [`StdRng`] for `label`.
    #[must_use]
    pub fn stream(&self, label: &str) -> StdRng {
        StdRng::seed_from_u64(self.derive(label))
    }

    /// Derives a child sequence, useful for per-replica seeding in sweeps.
    #[must_use]
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            master: splitmix64(self.master.wrapping_add(splitmix64(index))),
        }
    }
}

/// One round of the SplitMix64 mixing function.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_label_same_stream() {
        let s = SeedSequence::new(7);
        let mut a = s.stream("x");
        let mut b = s.stream("x");
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_labels_differ() {
        let s = SeedSequence::new(7);
        assert_ne!(s.derive("x"), s.derive("y"));
        assert_ne!(s.derive("x"), s.derive("x "));
    }

    #[test]
    fn different_masters_differ() {
        assert_ne!(
            SeedSequence::new(1).derive("x"),
            SeedSequence::new(2).derive("x")
        );
    }

    #[test]
    fn children_are_distinct() {
        let s = SeedSequence::new(3);
        assert_ne!(s.child(0).master(), s.child(1).master());
        assert_ne!(s.child(0).derive("x"), s.derive("x"));
    }
}
