//! Simulation timestamps.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in simulated time, measured in seconds from the start of the run.
///
/// `SimTime` is a thin wrapper around `f64` that restores total ordering by rejecting
/// NaN at construction, so it can be used as a key in the event queue.
///
/// # Examples
///
/// ```
/// use dias_des::SimTime;
///
/// let a = SimTime::from_secs(1.5);
/// let b = a + 2.5;
/// assert_eq!(b.as_secs(), 4.0);
/// assert!(a < b);
/// assert_eq!((b - a), 2.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A timestamp later than any event a simulation will ever schedule.
    pub const FAR_FUTURE: SimTime = SimTime(f64::INFINITY);

    /// Creates a timestamp from seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is NaN or negative; simulated time always moves forward from
    /// zero.
    #[must_use]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        assert!(secs >= 0.0, "SimTime cannot be negative: {secs}");
        SimTime(secs)
    }

    /// Returns the timestamp as seconds.
    #[must_use]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Returns `true` if this timestamp is finite (i.e., not [`SimTime::FAR_FUTURE`]).
    #[must_use]
    pub fn is_finite(self) -> bool {
        self.0.is_finite()
    }

    /// Returns the earlier of two timestamps.
    #[must_use]
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// Returns the later of two timestamps.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Construction forbids NaN, so the comparison is total.
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;

    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert!(a < b);
        assert_eq!(a.min(b), a);
        assert_eq!(a.max(b), b);
        assert!(SimTime::FAR_FUTURE > b);
    }

    #[test]
    fn arithmetic_roundtrips() {
        let a = SimTime::from_secs(3.5);
        assert_eq!((a + 1.5).as_secs(), 5.0);
        assert_eq!(a + 1.5 - a, 1.5);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_rejected() {
        let _ = SimTime::from_secs(-1.0);
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(SimTime::from_secs(1.25).to_string(), "1.250s");
    }

    #[test]
    fn far_future_is_not_finite() {
        assert!(!SimTime::FAR_FUTURE.is_finite());
        assert!(SimTime::ZERO.is_finite());
    }
}
