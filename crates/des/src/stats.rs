//! Statistics collectors for simulation output.
//!
//! Every experiment in the workspace reports means, percentiles and time-weighted
//! utilizations; these collectors are the single implementation they share.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// Streaming mean/variance via Welford's algorithm.
///
/// Numerically stable and O(1) memory; use when only the first two moments are needed.
///
/// # Examples
///
/// ```
/// use dias_des::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.variance() - 4.571428571428571).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of a ~95% confidence interval on the mean (normal approximation).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return f64::INFINITY;
        }
        1.96 * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Population variance (`M2 / n`); 0 when empty.
    ///
    /// This is the same normalization [`SampleSet::variance`] uses, so exact
    /// and streaming statistics backends agree on what "variance" means.
    #[must_use]
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Merges another accumulator into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// A sample set retaining every observation, for exact quantiles.
///
/// Experiments in this workspace observe at most a few hundred thousand jobs, so
/// retaining samples is cheap and gives exact percentiles (the paper reports the
/// 95th percentile "tail latency" throughout its evaluation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<f64>,
}

impl SampleSet {
    /// Creates an empty sample set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sample set with room for `n` observations, so hot
    /// recording loops with a known sample budget never reallocate.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(n),
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "sample cannot be NaN");
        self.samples.push(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean; 0 when empty.
    ///
    /// Computed on demand (left-to-right over the recorded samples, the same
    /// order an eager accumulator would produce): recording is the hot path,
    /// querying is not.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Mean of squares; 0 when empty. Useful for feeding M/G/1 formulas.
    #[must_use]
    pub fn mean_sq(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|x| x * x).sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sample variance (population form); 0 when empty.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.mean_sq() - m * m).max(0.0)
    }

    /// Exact `q`-quantile with linear interpolation between order statistics.
    ///
    /// `q` must be in `[0, 1]`. Returns 0 when the set is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// The 95th percentile, the paper's tail-latency metric.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Largest observation; 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Read-only view of the raw samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges `other` into this set by appending its quantile buffer.
    ///
    /// Because the set retains every observation, the merge is *exact*: the
    /// count is the sum of counts, and every moment and every quantile of
    /// the merged set equals the statistic computed over the pooled
    /// observations — there is no sketch error to track. Merging is
    /// associative, the empty set is a neutral element, and merging the same
    /// parts in the same order always yields bitwise-identical statistics,
    /// which is what lets parallel Monte-Carlo replications fan out and
    /// recombine deterministically.
    pub fn merge(&mut self, other: &SampleSet) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = SampleSet::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for SampleSet {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Common interface over exact ([`SampleSet`]) and streaming
/// ([`StreamingSummary`]) per-metric statistics backends.
///
/// Closed fixed-N experiments keep every observation for exact percentiles;
/// open-system soaks over millions of jobs cannot. Harness code that is
/// generic over this trait works with either backend: `quantile` is exact for
/// `SampleSet` and ε-approximate (rank error ≤ εn, see [`GkSketch`]) for
/// `StreamingSummary`, while `count`, `mean` and `merge` are exact for both.
pub trait SampleStats: Clone + Default + PartialEq + std::fmt::Debug {
    /// Records an observation. Panics on NaN for both backends.
    fn push(&mut self, x: f64);

    /// Number of observations recorded.
    fn count(&self) -> u64;

    /// Returns `true` when no observations were recorded.
    fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sample mean; 0 when empty.
    fn mean(&self) -> f64;

    /// Population variance (`E[X²] − E[X]²` normalization); 0 when empty.
    fn variance(&self) -> f64;

    /// The `q`-quantile for `q ∈ [0, 1]`; 0 when empty. Exact or
    /// ε-approximate in rank depending on the backend.
    fn quantile(&self, q: f64) -> f64;

    /// The 95th percentile, the paper's tail-latency metric.
    fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Largest observation; 0 when empty.
    fn max(&self) -> f64;

    /// Merges another collector of the same backend into this one.
    fn merge(&mut self, other: &Self);

    /// Number of live heap objects held (buffered samples or sketch nodes).
    ///
    /// Feeds the soak harness's live-object high-water-mark memory proxy: for
    /// `SampleSet` this is the full sample count (which is exactly why it
    /// cannot back an open-system soak), for `StreamingSummary` it is the
    /// bounded sketch node count.
    fn live_nodes(&self) -> usize;
}

impl SampleStats for SampleSet {
    fn push(&mut self, x: f64) {
        SampleSet::push(self, x);
    }

    fn count(&self) -> u64 {
        self.len() as u64
    }

    fn is_empty(&self) -> bool {
        SampleSet::is_empty(self)
    }

    fn mean(&self) -> f64 {
        SampleSet::mean(self)
    }

    fn variance(&self) -> f64 {
        SampleSet::variance(self)
    }

    fn quantile(&self, q: f64) -> f64 {
        SampleSet::quantile(self, q)
    }

    fn p95(&self) -> f64 {
        SampleSet::p95(self)
    }

    fn max(&self) -> f64 {
        SampleSet::max(self)
    }

    fn merge(&mut self, other: &Self) {
        SampleSet::merge(self, other);
    }

    fn live_nodes(&self) -> usize {
        self.len()
    }
}

/// Streaming first/second moments plus exact extremes, O(1) memory.
///
/// A [`Welford`] accumulator extended with running min/max so it can stand in
/// for the moment-side of a [`SampleSet`] (`mean`, `variance`, `max`) without
/// retaining observations. Mean and count merge exactly (parallel Welford);
/// like the rest of the collectors, empty-set queries return 0.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StreamingMoments {
    welford: Welford,
    min: f64,
    max: f64,
}

impl Default for StreamingMoments {
    fn default() -> Self {
        StreamingMoments {
            welford: Welford::new(),
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "sample cannot be NaN");
        self.welford.push(x);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.welford.count()
    }

    /// Returns `true` when no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count() == 0
    }

    /// Sample mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.welford.mean()
    }

    /// Population variance (`M2 / n`); 0 when empty.
    #[must_use]
    pub fn variance(&self) -> f64 {
        self.welford.population_variance()
    }

    /// Smallest observation; 0 when empty (matching [`SampleSet::max`]'s
    /// empty-set convention).
    #[must_use]
    pub fn min(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        if self.is_empty() {
            0.0
        } else {
            self.max
        }
    }

    /// Merges another accumulator into this one. Exact: count, mean and M2
    /// combine by the parallel Welford rule, extremes by min/max.
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.is_empty() {
            return;
        }
        self.welford.merge(&other.welford);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Default rank-error bound for streaming quantile sketches: quantile queries
/// are accurate to ±1% of the stream length in rank.
pub const DEFAULT_SKETCH_EPSILON: f64 = 0.01;

/// One Greenwald–Khanna summary tuple: a stored value `v` covering `g`
/// observations, with `delta` bounding the extra rank uncertainty.
///
/// With `r_min(i) = Σ_{j≤i} g_j` and `r_max(i) = r_min(i) + Δ_i`, the true
/// rank of `v_i` in the stream lies in `[r_min(i), r_max(i)]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct GkTuple {
    v: f64,
    g: u64,
    delta: u64,
}

/// Greenwald–Khanna ε-approximate streaming quantile sketch.
///
/// Maintains a sorted list of `GkTuple`s under the GK invariant
/// `g_i + Δ_i ≤ ⌊2εn⌋` (with the first and last tuples pinning the exact
/// min/max). Under that invariant a quantile query returns a value whose rank
/// differs from the requested rank by at most `εn` — the classic
/// Greenwald–Khanna bound (SIGMOD 2001) — in `O((1/ε)·log(εn))` space.
///
/// Inserts are buffered (capacity `max(256, ⌈1/(2ε)⌉)`) and folded in by a
/// sort + one-pass merge, so amortized insert cost stays logarithmic rather
/// than paying an `O(nodes)` memmove per observation. [`GkSketch::merge`]
/// combines two sketches *losslessly with respect to their rank bounds*: each
/// merged tuple's `[r_min, r_max]` interval is derived from both inputs, so
/// the merged sketch answers queries with error ≤ `max(ε_a, ε_b)·n`.
///
/// # Examples
///
/// ```
/// use dias_des::stats::GkSketch;
///
/// let mut s = GkSketch::with_epsilon(0.01);
/// for i in 0..10_000 {
///     s.push(f64::from(i));
/// }
/// let p50 = s.quantile(0.5);
/// assert!((p50 - 5000.0).abs() <= 100.0); // rank error ≤ εn = 100
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GkSketch {
    eps: f64,
    count: u64,
    tuples: Vec<GkTuple>,
    buf: Vec<f64>,
}

impl Default for GkSketch {
    fn default() -> Self {
        GkSketch::with_epsilon(DEFAULT_SKETCH_EPSILON)
    }
}

impl GkSketch {
    /// Creates an empty sketch with rank-error bound `eps`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 0.5`.
    #[must_use]
    pub fn with_epsilon(eps: f64) -> Self {
        assert!(eps > 0.0 && eps < 0.5, "sketch epsilon must be in (0, 0.5)");
        GkSketch {
            eps,
            count: 0,
            tuples: Vec::new(),
            buf: Vec::new(),
        }
    }

    /// The sketch's rank-error bound ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.eps
    }

    /// Number of observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Returns `true` when no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Live summary size: retained tuples plus not-yet-folded buffer entries.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.tuples.len() + self.buf.len()
    }

    fn buf_capacity(&self) -> usize {
        256usize.max((1.0 / (2.0 * self.eps)).ceil() as usize)
    }

    /// Records an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "sample cannot be NaN");
        self.buf.push(x);
        self.count += 1;
        if self.buf.len() >= self.buf_capacity() {
            self.flush();
        }
    }

    /// Folds the insert buffer into the tuple list and compresses.
    fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        self.buf
            .sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let buf = std::mem::take(&mut self.buf);
        let old = std::mem::take(&mut self.tuples);
        let mut merged: Vec<GkTuple> = Vec::with_capacity(old.len() + buf.len());
        let mut old_iter = old.into_iter().peekable();
        // `n` tracks how many observations the tuple list accounts for as each
        // buffered element is inserted; the GK insert rule caps the new
        // tuple's uncertainty at ⌊2εn⌋ − 1 (0 for a new global extreme, whose
        // rank is known exactly).
        let mut n = self.count - buf.len() as u64;
        for x in buf {
            while old_iter.peek().is_some_and(|t| t.v <= x) {
                merged.push(old_iter.next().expect("peeked"));
            }
            n += 1;
            let new_min = merged.is_empty();
            let new_max = old_iter.peek().is_none();
            let delta = if new_min || new_max {
                0
            } else {
                ((2.0 * self.eps * n as f64).floor() as u64).saturating_sub(1)
            };
            merged.push(GkTuple { v: x, g: 1, delta });
        }
        merged.extend(old_iter);
        self.tuples = merged;
        self.compress();
    }

    /// GK COMPRESS: greedily merges adjacent tuples (right-to-left, each into
    /// its successor) while the invariant `g_i + g_{i+1} + Δ_{i+1} ≤ ⌊2εn⌋`
    /// allows, never touching the first or last tuple (exact extremes).
    fn compress(&mut self) {
        if self.tuples.len() <= 2 {
            return;
        }
        let cap = (2.0 * self.eps * self.count as f64).floor() as u64;
        let tuples = std::mem::take(&mut self.tuples);
        let len = tuples.len();
        let mut rev: Vec<GkTuple> = Vec::with_capacity(len);
        for (i, t) in tuples.into_iter().enumerate().rev() {
            if rev.is_empty() || i == 0 {
                rev.push(t);
                continue;
            }
            let succ = rev.last_mut().expect("non-empty");
            if t.g + succ.g + succ.delta <= cap {
                succ.g += t.g;
            } else {
                rev.push(t);
            }
        }
        rev.reverse();
        self.tuples = rev;
    }

    /// The `q`-quantile for `q ∈ [0, 1]`; 0 when empty.
    ///
    /// Returns a stored value whose rank is within `εn` of `⌈qn⌉`. Queries on
    /// a sketch with a non-empty insert buffer fold a clone first, so the
    /// sketch itself can stay `&self`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.count == 0 {
            return 0.0;
        }
        if self.buf.is_empty() {
            return self.quantile_flushed(q);
        }
        let mut folded = self.clone();
        folded.flush();
        folded.quantile_flushed(q)
    }

    fn quantile_flushed(&self, q: f64) -> f64 {
        // The first and last tuples pin the exact extremes (Δ = 0 on insert,
        // never removed by compress), so the endpoints are answered exactly.
        if q == 0.0 {
            return self.tuples[0].v;
        }
        if q == 1.0 {
            return self.tuples[self.tuples.len() - 1].v;
        }
        let n = self.count as f64;
        let rank = (q * n).ceil().max(1.0);
        let slack = self.eps * n;
        let mut r_min = 0u64;
        let mut prev_v = self.tuples[0].v;
        for t in &self.tuples {
            r_min += t.g;
            let r_max = r_min + t.delta;
            if r_max as f64 > rank + slack {
                return prev_v;
            }
            prev_v = t.v;
        }
        prev_v
    }

    /// Merges another sketch into this one.
    ///
    /// Implements the rank-bound-preserving combine: both sides are flushed,
    /// the tuple lists are merge-sorted, and each output tuple's rank
    /// interval is `r_min = r_min_own + r_min_other(pred)`,
    /// `r_max = r_max_own + r_max_other(succ) − 1` (or `+ n_other` past the
    /// last tuple of the other side), after which `(g, Δ)` are recovered from
    /// consecutive intervals. The result satisfies the GK query guarantee at
    /// `ε = max(ε_self, ε_other)` and is then re-compressed at the combined
    /// count. Merging an empty sketch is bitwise neutral.
    pub fn merge(&mut self, other: &GkSketch) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        self.flush();
        let mut rhs = other.clone();
        rhs.flush();
        self.eps = self.eps.max(rhs.eps);

        fn bounds(tuples: &[GkTuple]) -> Vec<(f64, u64, u64)> {
            let mut out = Vec::with_capacity(tuples.len());
            let mut r_min = 0u64;
            for t in tuples {
                r_min += t.g;
                out.push((t.v, r_min, r_min + t.delta));
            }
            out
        }

        let a = bounds(&std::mem::take(&mut self.tuples));
        let b = bounds(&rhs.tuples);
        let (n_a, n_b) = (self.count, rhs.count);
        let mut out: Vec<GkTuple> = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        let mut prev_r_min = 0u64;
        while i < a.len() || j < b.len() {
            let take_a = j >= b.len() || (i < a.len() && a[i].0 <= b[j].0);
            let (v, own_min, own_max, other, other_idx, other_n) = if take_a {
                let t = a[i];
                i += 1;
                (t.0, t.1, t.2, &b, j, n_b)
            } else {
                let t = b[j];
                j += 1;
                (t.0, t.1, t.2, &a, i, n_a)
            };
            let pred_other_min = if other_idx == 0 {
                0
            } else {
                other[other_idx - 1].1
            };
            let succ_other = if other_idx < other.len() {
                other[other_idx].2 - 1
            } else {
                other_n
            };
            let r_min = own_min + pred_other_min;
            let r_max = own_max + succ_other;
            debug_assert!(r_min > prev_r_min, "merged r_min must be increasing");
            debug_assert!(r_max >= r_min);
            out.push(GkTuple {
                v,
                g: r_min - prev_r_min,
                delta: r_max - r_min,
            });
            prev_r_min = r_min;
        }
        self.count = n_a + n_b;
        self.tuples = out;
        self.compress();
    }
}

/// O(1)-memory drop-in for [`SampleSet`]: streaming moments plus a
/// Greenwald–Khanna quantile sketch.
///
/// This is the streaming statistics backend for open-system soak runs:
/// `count`, `mean`, `variance` and `max` are exact (Welford + running
/// extremes), `quantile` is ε-approximate in rank (default
/// [`DEFAULT_SKETCH_EPSILON`] = 1%), and `merge` combines both parts without
/// widening the sketch's error bound beyond `max(ε_a, ε_b)`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingSummary {
    moments: StreamingMoments,
    sketch: GkSketch,
}

impl StreamingSummary {
    /// Creates an empty summary at the default ε.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty summary with sketch rank-error bound `eps`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < eps < 0.5`.
    #[must_use]
    pub fn with_epsilon(eps: f64) -> Self {
        StreamingSummary {
            moments: StreamingMoments::new(),
            sketch: GkSketch::with_epsilon(eps),
        }
    }

    /// The underlying sketch's rank-error bound ε.
    #[must_use]
    pub fn epsilon(&self) -> f64 {
        self.sketch.epsilon()
    }

    /// Smallest observation; 0 when empty.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.moments.min()
    }

    /// Access to the exact streaming moments.
    #[must_use]
    pub fn moments(&self) -> &StreamingMoments {
        &self.moments
    }

    /// Access to the quantile sketch.
    #[must_use]
    pub fn sketch(&self) -> &GkSketch {
        &self.sketch
    }
}

impl SampleStats for StreamingSummary {
    fn push(&mut self, x: f64) {
        self.moments.push(x);
        self.sketch.push(x);
    }

    fn count(&self) -> u64 {
        self.moments.count()
    }

    fn mean(&self) -> f64 {
        self.moments.mean()
    }

    fn variance(&self) -> f64 {
        self.moments.variance()
    }

    fn quantile(&self, q: f64) -> f64 {
        self.sketch.quantile(q)
    }

    fn max(&self) -> f64 {
        self.moments.max()
    }

    fn merge(&mut self, other: &Self) {
        self.moments.merge(&other.moments);
        self.sketch.merge(&other.sketch);
    }

    fn live_nodes(&self) -> usize {
        self.sketch.nodes()
    }
}

/// Integrates a piecewise-constant signal over simulated time.
///
/// Used for utilization, queue-length averages and power-to-energy integration.
///
/// # Examples
///
/// ```
/// use dias_des::stats::TimeWeighted;
/// use dias_des::SimTime;
///
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.set(SimTime::from_secs(2.0), 1.0); // signal was 0 for 2s
/// u.set(SimTime::from_secs(6.0), 0.0); // signal was 1 for 4s
/// assert_eq!(u.integral(SimTime::from_secs(6.0)), 4.0);
/// assert!((u.time_average(SimTime::from_secs(6.0)) - 4.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts integrating at `start` with initial signal `value`.
    #[must_use]
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            value,
            integral: 0.0,
            start,
        }
    }

    /// Updates the signal to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update (time must be monotone).
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(now >= self.last_time, "time must not run backwards");
        self.integral += self.value * (now - self.last_time);
        self.last_time = now;
        self.value = value;
    }

    /// Adds `delta` to the current signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current signal value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Integral of the signal from start until `now`.
    #[must_use]
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral + self.value * (now - self.last_time)
    }

    /// Time-average of the signal from start until `now`; 0 over an empty horizon.
    #[must_use]
    pub fn time_average(&self, now: SimTime) -> f64 {
        let horizon = now - self.start;
        if horizon <= 0.0 {
            0.0
        } else {
            self.integral(now) / horizon
        }
    }
}

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations, including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts (excluding under/overflow).
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Fraction of observations at or above `x` (empirical complementary CDF).
    #[must_use]
    pub fn ccdf(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut above = self.overflow;
        for (i, &c) in self.bins.iter().enumerate() {
            let bin_lo = self.lo + i as f64 * width;
            if bin_lo >= x {
                above += c;
            }
        }
        if x <= self.lo {
            above += self.underflow;
        }
        above as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn sampleset_quantiles() {
        let s: SampleSet = (1..=100).map(f64::from).collect();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.quantile(0.5) - 50.5).abs() < 1e-12);
        assert!((s.p95() - 95.05).abs() < 1e-9);
        assert_eq!(s.mean(), 50.5);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn sampleset_empty_is_zero() {
        let s = SampleSet::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn sampleset_merge() {
        let mut a: SampleSet = [1.0, 2.0].into_iter().collect();
        let b: SampleSet = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn sampleset_merge_is_exact_for_moments_and_quantiles() {
        // Split a skewed sample three ways; the merge of the parts must agree
        // with the pooled set on count, moments, and every probed quantile —
        // bitwise, not approximately.
        let xs: Vec<f64> = (0..997).map(|i| ((i * 97) % 251) as f64 * 0.37).collect();
        let pooled: SampleSet = xs.iter().copied().collect();
        let mut merged = SampleSet::new();
        for chunk in xs.chunks(310) {
            let part: SampleSet = chunk.iter().copied().collect();
            merged.merge(&part);
        }
        assert_eq!(merged.len(), pooled.len());
        assert_eq!(merged.mean(), pooled.mean());
        assert_eq!(merged.mean_sq(), pooled.mean_sq());
        assert_eq!(merged.variance(), pooled.variance());
        assert_eq!(merged.max(), pooled.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), pooled.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn sampleset_merge_empty_is_neutral_and_associative() {
        let a: SampleSet = [5.0, 1.0, 3.0].into_iter().collect();
        let b: SampleSet = [2.0, 4.0].into_iter().collect();
        let c: SampleSet = [9.0].into_iter().collect();
        // Neutral element on both sides.
        let mut left = SampleSet::new();
        left.merge(&a);
        assert_eq!(left, a);
        let mut right = a.clone();
        right.merge(&SampleSet::new());
        assert_eq!(right, a);
        // (a ∪ b) ∪ c == a ∪ (b ∪ c): same retained sequence either way.
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn sampleset_rejects_nan() {
        SampleSet::new().push(f64::NAN);
    }

    #[test]
    fn sampleset_empty_edge_cases_pinned() {
        // The audit for the streaming backend: every query on an empty set
        // returns 0 (not NaN, not a panic) at every probed q, including the
        // endpoints — the sketch mirrors exactly this contract.
        let s = SampleSet::new();
        for q in [0.0, 0.25, 0.5, 0.95, 1.0] {
            assert_eq!(s.quantile(q), 0.0, "empty quantile({q})");
        }
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.mean_sq(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.p95(), 0.0);
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn sampleset_one_element_edge_cases_pinned() {
        // A single observation is every quantile of itself (interpolation
        // must not index out of bounds at q=1), and is mean, max, and p95.
        let mut s = SampleSet::new();
        s.push(7.25);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(s.quantile(q), 7.25, "singleton quantile({q})");
        }
        assert_eq!(s.mean(), 7.25);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.max(), 7.25);
        // Negative singleton: max() folds from 0.0, pinning the documented
        // "0 when empty" identity even though it masks negative extremes —
        // response/queueing metrics are all non-negative, so this is safe,
        // but the contract is pinned here so a change is a conscious one.
        let mut neg = SampleSet::new();
        neg.push(-3.0);
        assert_eq!(neg.quantile(0.5), -3.0);
        assert_eq!(neg.max(), 0.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn sampleset_rejects_out_of_range_quantile() {
        let mut s = SampleSet::new();
        s.push(1.0);
        let _ = s.quantile(1.5);
    }

    #[test]
    fn streaming_moments_match_exact() {
        let xs: Vec<f64> = (0..500)
            .map(|i| ((i * 37) % 101) as f64 * 0.5 - 10.0)
            .collect();
        let exact: SampleSet = xs.iter().copied().collect();
        let mut m = StreamingMoments::new();
        for &x in &xs {
            m.push(x);
        }
        assert_eq!(m.count(), exact.len() as u64);
        assert!((m.mean() - exact.mean()).abs() < 1e-9);
        assert!((m.variance() - exact.variance()).abs() < 1e-9);
        assert_eq!(
            m.max(),
            xs.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        );
        assert_eq!(m.min(), xs.iter().copied().fold(f64::INFINITY, f64::min));
    }

    #[test]
    fn streaming_moments_empty_and_merge() {
        let mut a = StreamingMoments::new();
        assert_eq!(a.mean(), 0.0);
        assert_eq!(a.variance(), 0.0);
        assert_eq!(a.min(), 0.0);
        assert_eq!(a.max(), 0.0);
        let mut b = StreamingMoments::new();
        b.push(2.0);
        b.push(4.0);
        a.merge(&b);
        assert_eq!(a, b);
        let empty = StreamingMoments::new();
        a.merge(&empty);
        assert_eq!(a, b);
    }

    #[test]
    fn gk_sketch_small_stream_is_exact_enough() {
        // Below the buffer capacity the sketch holds raw samples, so the
        // query path must still work against the buffered (unflushed) state.
        let mut s = GkSketch::with_epsilon(0.01);
        for i in 1..=100 {
            s.push(f64::from(i));
        }
        assert_eq!(s.count(), 100);
        let p50 = s.quantile(0.5);
        assert!((p50 - 50.0).abs() <= 1.0 + 1e-9, "p50 = {p50}");
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
    }

    #[test]
    fn gk_sketch_empty_and_singleton_mirror_sampleset() {
        let s = GkSketch::default();
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile(q), 0.0);
        }
        assert!(s.is_empty());
        assert_eq!(s.nodes(), 0);
        let mut one = GkSketch::default();
        one.push(7.25);
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(one.quantile(q), 7.25);
        }
    }

    #[test]
    fn gk_sketch_merge_empty_is_bitwise_neutral() {
        let mut s = GkSketch::with_epsilon(0.02);
        for i in 0..1000 {
            s.push(f64::from(i) * 0.3);
        }
        let before = s.clone();
        s.merge(&GkSketch::with_epsilon(0.02));
        assert_eq!(s, before);
        let mut empty = GkSketch::with_epsilon(0.02);
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn streaming_summary_tracks_exact_set() {
        let xs: Vec<f64> = (0..20_000)
            .map(|i| (((i * 193) % 7919) as f64).sqrt() * 3.0)
            .collect();
        let exact: SampleSet = xs.iter().copied().collect();
        let mut stream = StreamingSummary::new();
        for &x in &xs {
            SampleStats::push(&mut stream, x);
        }
        let n = xs.len() as f64;
        assert_eq!(SampleStats::count(&stream), exact.len() as u64);
        assert!((SampleStats::mean(&stream) - exact.mean()).abs() < 1e-9);
        assert!((SampleStats::variance(&stream) - exact.variance()).abs() < 1e-6);
        assert_eq!(SampleStats::max(&stream), exact.max());
        // Rank error ≤ εn ⇒ the returned value sits between the order
        // statistics at ranks ⌈qn⌉ ± εn.
        let mut sorted = xs.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.9, 0.95, 0.99] {
            let v = SampleStats::quantile(&stream, q);
            let rank = (q * n).ceil();
            let eps_n = stream.epsilon() * n;
            let lo = ((rank - eps_n).floor().max(1.0) as usize) - 1;
            let hi = ((rank + eps_n).ceil().min(n) as usize) - 1;
            assert!(
                v >= sorted[lo] && v <= sorted[hi],
                "q={q}: {v} outside [{}, {}]",
                sorted[lo],
                sorted[hi]
            );
        }
        // Sub-linear space: far fewer live nodes than observations.
        assert!(
            SampleStats::live_nodes(&stream) < xs.len() / 10,
            "nodes = {}",
            SampleStats::live_nodes(&stream)
        );
    }

    #[test]
    fn time_weighted_integral() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.set(SimTime::from_secs(3.0), 5.0);
        tw.add(SimTime::from_secs(4.0), -5.0);
        // 2*3 + 5*1 + 0*...
        assert_eq!(tw.integral(SimTime::from_secs(10.0)), 11.0);
        assert!((tw.time_average(SimTime::from_secs(10.0)) - 1.1).abs() < 1e-12);
        assert_eq!(tw.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5.0), 0.0);
        tw.set(SimTime::from_secs(4.0), 1.0);
    }

    #[test]
    fn histogram_counts_and_ccdf() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(42.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.bins().iter().sum::<u64>(), 10);
        // 5 in-range samples >= 5.0, plus overflow = 6 of 12.
        assert!((h.ccdf(5.0) - 0.5).abs() < 1e-12);
    }
}
