//! Statistics collectors for simulation output.
//!
//! Every experiment in the workspace reports means, percentiles and time-weighted
//! utilizations; these collectors are the single implementation they share.

use serde::{Deserialize, Serialize};

use crate::SimTime;

/// Streaming mean/variance via Welford's algorithm.
///
/// Numerically stable and O(1) memory; use when only the first two moments are needed.
///
/// # Examples
///
/// ```
/// use dias_des::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     w.push(x);
/// }
/// assert!((w.mean() - 5.0).abs() < 1e-12);
/// assert!((w.variance() - 4.571428571428571).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of a ~95% confidence interval on the mean (normal approximation).
    #[must_use]
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            return f64::INFINITY;
        }
        1.96 * self.std_dev() / (self.count as f64).sqrt()
    }

    /// Merges another accumulator into this one (parallel Welford combination).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
    }
}

/// A sample set retaining every observation, for exact quantiles.
///
/// Experiments in this workspace observe at most a few hundred thousand jobs, so
/// retaining samples is cheap and gives exact percentiles (the paper reports the
/// 95th percentile "tail latency" throughout its evaluation).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SampleSet {
    samples: Vec<f64>,
}

impl SampleSet {
    /// Creates an empty sample set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sample set with room for `n` observations, so hot
    /// recording loops with a known sample budget never reallocate.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        SampleSet {
            samples: Vec::with_capacity(n),
        }
    }

    /// Adds an observation.
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "sample cannot be NaN");
        self.samples.push(x);
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no observations were recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean; 0 when empty.
    ///
    /// Computed on demand (left-to-right over the recorded samples, the same
    /// order an eager accumulator would produce): recording is the hot path,
    /// querying is not.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Mean of squares; 0 when empty. Useful for feeding M/G/1 formulas.
    #[must_use]
    pub fn mean_sq(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().map(|x| x * x).sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sample variance (population form); 0 when empty.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let m = self.mean();
        (self.mean_sq() - m * m).max(0.0)
    }

    /// Exact `q`-quantile with linear interpolation between order statistics.
    ///
    /// `q` must be in `[0, 1]`. Returns 0 when the set is empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let pos = q * (sorted.len() - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        if lo == hi {
            sorted[lo]
        } else {
            let frac = pos - lo as f64;
            sorted[lo] * (1.0 - frac) + sorted[hi] * frac
        }
    }

    /// The 95th percentile, the paper's tail-latency metric.
    #[must_use]
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// Largest observation; 0 when empty.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.samples.iter().copied().fold(0.0, f64::max)
    }

    /// Read-only view of the raw samples.
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Merges `other` into this set by appending its quantile buffer.
    ///
    /// Because the set retains every observation, the merge is *exact*: the
    /// count is the sum of counts, and every moment and every quantile of
    /// the merged set equals the statistic computed over the pooled
    /// observations — there is no sketch error to track. Merging is
    /// associative, the empty set is a neutral element, and merging the same
    /// parts in the same order always yields bitwise-identical statistics,
    /// which is what lets parallel Monte-Carlo replications fan out and
    /// recombine deterministically.
    pub fn merge(&mut self, other: &SampleSet) {
        self.samples.extend_from_slice(&other.samples);
    }
}

impl FromIterator<f64> for SampleSet {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut s = SampleSet::new();
        for x in iter {
            s.push(x);
        }
        s
    }
}

impl Extend<f64> for SampleSet {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Integrates a piecewise-constant signal over simulated time.
///
/// Used for utilization, queue-length averages and power-to-energy integration.
///
/// # Examples
///
/// ```
/// use dias_des::stats::TimeWeighted;
/// use dias_des::SimTime;
///
/// let mut u = TimeWeighted::new(SimTime::ZERO, 0.0);
/// u.set(SimTime::from_secs(2.0), 1.0); // signal was 0 for 2s
/// u.set(SimTime::from_secs(6.0), 0.0); // signal was 1 for 4s
/// assert_eq!(u.integral(SimTime::from_secs(6.0)), 4.0);
/// assert!((u.time_average(SimTime::from_secs(6.0)) - 4.0 / 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeWeighted {
    last_time: SimTime,
    value: f64,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts integrating at `start` with initial signal `value`.
    #[must_use]
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted {
            last_time: start,
            value,
            integral: 0.0,
            start,
        }
    }

    /// Updates the signal to `value` at time `now`.
    ///
    /// # Panics
    ///
    /// Panics if `now` precedes the previous update (time must be monotone).
    pub fn set(&mut self, now: SimTime, value: f64) {
        assert!(now >= self.last_time, "time must not run backwards");
        self.integral += self.value * (now - self.last_time);
        self.last_time = now;
        self.value = value;
    }

    /// Adds `delta` to the current signal at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value + delta;
        self.set(now, v);
    }

    /// Current signal value.
    #[must_use]
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Integral of the signal from start until `now`.
    #[must_use]
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral + self.value * (now - self.last_time)
    }

    /// Time-average of the signal from start until `now`; 0 over an empty horizon.
    #[must_use]
    pub fn time_average(&self, now: SimTime) -> f64 {
        let horizon = now - self.start;
        if horizon <= 0.0 {
            0.0
        } else {
            self.integral(now) / horizon
        }
    }
}

/// A fixed-bin histogram over `[lo, hi)` with overflow/underflow buckets.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins spanning `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be non-empty");
        assert!(bins > 0, "histogram needs at least one bin");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
            count: 0,
        }
    }

    /// Records an observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let width = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / width) as usize;
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Total number of observations, including under/overflow.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Bin counts (excluding under/overflow).
    #[must_use]
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// Fraction of observations at or above `x` (empirical complementary CDF).
    #[must_use]
    pub fn ccdf(&self, x: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let width = (self.hi - self.lo) / self.bins.len() as f64;
        let mut above = self.overflow;
        for (i, &c) in self.bins.iter().enumerate() {
            let bin_lo = self.lo + i as f64 * width;
            if bin_lo >= x {
                above += c;
            }
        }
        if x <= self.lo {
            above += self.underflow;
        }
        above as f64 / self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [1.0, 2.0, 3.0, 4.0, 10.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.push(x);
        }
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.mean() - mean).abs() < 1e-12);
        assert!((w.variance() - var).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.push(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - all.mean()).abs() < 1e-9);
        assert!((a.variance() - all.variance()).abs() < 1e-9);
        assert_eq!(a.count(), all.count());
    }

    #[test]
    fn sampleset_quantiles() {
        let s: SampleSet = (1..=100).map(f64::from).collect();
        assert_eq!(s.quantile(0.0), 1.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert!((s.quantile(0.5) - 50.5).abs() < 1e-12);
        assert!((s.p95() - 95.05).abs() < 1e-9);
        assert_eq!(s.mean(), 50.5);
        assert_eq!(s.max(), 100.0);
    }

    #[test]
    fn sampleset_empty_is_zero() {
        let s = SampleSet::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.quantile(0.5), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn sampleset_merge() {
        let mut a: SampleSet = [1.0, 2.0].into_iter().collect();
        let b: SampleSet = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn sampleset_merge_is_exact_for_moments_and_quantiles() {
        // Split a skewed sample three ways; the merge of the parts must agree
        // with the pooled set on count, moments, and every probed quantile —
        // bitwise, not approximately.
        let xs: Vec<f64> = (0..997).map(|i| ((i * 97) % 251) as f64 * 0.37).collect();
        let pooled: SampleSet = xs.iter().copied().collect();
        let mut merged = SampleSet::new();
        for chunk in xs.chunks(310) {
            let part: SampleSet = chunk.iter().copied().collect();
            merged.merge(&part);
        }
        assert_eq!(merged.len(), pooled.len());
        assert_eq!(merged.mean(), pooled.mean());
        assert_eq!(merged.mean_sq(), pooled.mean_sq());
        assert_eq!(merged.variance(), pooled.variance());
        assert_eq!(merged.max(), pooled.max());
        for q in [0.0, 0.01, 0.25, 0.5, 0.9, 0.95, 0.999, 1.0] {
            assert_eq!(merged.quantile(q), pooled.quantile(q), "quantile {q}");
        }
    }

    #[test]
    fn sampleset_merge_empty_is_neutral_and_associative() {
        let a: SampleSet = [5.0, 1.0, 3.0].into_iter().collect();
        let b: SampleSet = [2.0, 4.0].into_iter().collect();
        let c: SampleSet = [9.0].into_iter().collect();
        // Neutral element on both sides.
        let mut left = SampleSet::new();
        left.merge(&a);
        assert_eq!(left, a);
        let mut right = a.clone();
        right.merge(&SampleSet::new());
        assert_eq!(right, a);
        // (a ∪ b) ∪ c == a ∪ (b ∪ c): same retained sequence either way.
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn sampleset_rejects_nan() {
        SampleSet::new().push(f64::NAN);
    }

    #[test]
    fn time_weighted_integral() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 2.0);
        tw.set(SimTime::from_secs(3.0), 5.0);
        tw.add(SimTime::from_secs(4.0), -5.0);
        // 2*3 + 5*1 + 0*...
        assert_eq!(tw.integral(SimTime::from_secs(10.0)), 11.0);
        assert!((tw.time_average(SimTime::from_secs(10.0)) - 1.1).abs() < 1e-12);
        assert_eq!(tw.value(), 0.0);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn time_weighted_rejects_backwards_time() {
        let mut tw = TimeWeighted::new(SimTime::from_secs(5.0), 0.0);
        tw.set(SimTime::from_secs(4.0), 1.0);
    }

    #[test]
    fn histogram_counts_and_ccdf() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.push(i as f64 + 0.5);
        }
        h.push(-1.0);
        h.push(42.0);
        assert_eq!(h.count(), 12);
        assert_eq!(h.bins().iter().sum::<u64>(), 10);
        // 5 in-range samples >= 5.0, plus overflow = 6 of 12.
        assert!((h.ccdf(5.0) - 0.5).abs() < 1e-12);
    }
}
