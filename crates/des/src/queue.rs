//! A cancellable event queue with deterministic FIFO tie-breaking.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::SimTime;

/// Identifies an event scheduled in an [`EventQueue`] so it can be cancelled later.
///
/// Handles are cheap to copy and remain valid (as "already fired / already cancelled")
/// after the event leaves the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timed events.
///
/// Events with equal timestamps pop in insertion order, which keeps simulations
/// deterministic. Cancellation is O(1): cancelled entries are skipped lazily when
/// popped.
///
/// # Examples
///
/// ```
/// use dias_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let h = q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.cancel(h);
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Seqs currently in the heap that have not been cancelled or fired.
    pending: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: std::collections::HashSet::new(),
        }
    }

    /// Schedules `payload` to fire at `time` and returns a handle for cancellation.
    pub fn push(&mut self, time: SimTime, payload: E) -> EventHandle {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, payload });
        self.pending.insert(seq);
        EventHandle(seq)
    }

    /// Cancels a scheduled event.
    ///
    /// Returns `true` if the event was still pending; `false` if it had already fired
    /// or been cancelled.
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        self.pending.remove(&handle.0)
    }

    /// Removes and returns the earliest live event, skipping cancelled entries.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        while let Some(entry) = self.heap.pop() {
            if self.pending.remove(&entry.seq) {
                return Some((entry.time, entry.payload));
            }
        }
        None
    }

    /// Returns the timestamp of the earliest live event without removing it.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if self.pending.contains(&entry.seq) {
                return Some(entry.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Number of live (non-cancelled) events in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// Returns `true` if no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Removes every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 'c');
        q.push(SimTime::from_secs(1.0), 'a');
        q.push(SimTime::from_secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1.0), "x");
        q.push(SimTime::from_secs(2.0), "y");
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1.0), "x");
        assert!(q.pop().is_some());
        assert!(!q.cancel(h));
        // A later event must not be affected by the stale handle.
        q.push(SimTime::from_secs(2.0), "y");
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1.0), "x");
        q.push(SimTime::from_secs(4.0), "y");
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(4.0)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h1 = q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.cancel(h1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, 1);
        q.push(SimTime::from_secs(1.0), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn bogus_handle_rejected() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle(99)));
    }
}
