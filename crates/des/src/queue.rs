//! An indexed, truly-cancellable event calendar with deterministic FIFO
//! tie-breaking.
//!
//! The queue is a hand-rolled binary min-heap over `(time, seq)` stored in a
//! `Vec`, plus a handle → heap-slot index, so [`EventQueue::cancel`] and
//! [`EventQueue::reschedule`] remove or move the *actual* entry in O(log n)
//! instead of tombstoning it for a later pop to skip. There are never stale
//! entries in the heap, which is what makes [`EventQueue::peek_time`] a plain
//! `&self` read.
//!
//! The heap holds only `Copy` keys (`time`, `seq`, slot index); payloads are
//! parked in the slot table and never move during sifts. That makes the sifts
//! safe *hole* loops — the moving key is lifted out once and each displaced
//! key is written down one level with a single copy — instead of a
//! `Vec::swap` (three moves of a larger entry) per level.

use crate::SimTime;

/// Identifies an event scheduled in an [`EventQueue`] so it can be cancelled
/// or rescheduled later.
///
/// Handles are cheap to copy and remain valid (as "already fired / already
/// cancelled", rejected by [`EventQueue::cancel`] and
/// [`EventQueue::reschedule`]) after the event leaves the queue. Internally a
/// handle packs a reusable slot key with a per-slot generation counter; a
/// stale handle aliases a live event only after its slot's generation wraps
/// around `u32`, i.e. after ~4 billion reuses of one slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

impl EventHandle {
    fn new(key: u32, generation: u32) -> Self {
        EventHandle((u64::from(generation) << 32) | u64::from(key))
    }

    fn key(self) -> u32 {
        (self.0 & 0xffff_ffff) as u32
    }

    fn generation(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

/// A heap entry: just the ordering key plus the slot index of its payload.
/// `Copy`, so the hole sifts move 24 bytes per level whatever the payload is.
#[derive(Debug, Clone, Copy)]
struct Entry {
    time: SimTime,
    seq: u64,
    key: u32,
}

impl Entry {
    /// Min-heap priority: earlier time first, insertion order among ties.
    ///
    /// Hand-rolled on the raw seconds (`SimTime` construction already rejects
    /// NaN) so the per-level comparison in the sifts is two branch-predictable
    /// float/int compares, not an `Ordering` chain.
    #[inline]
    fn before(&self, other: &Self) -> bool {
        let (a, b) = (self.time.as_secs(), other.time.as_secs());
        a < b || (a == b && self.seq < other.seq)
    }
}

/// Slot `pos` value marking a handle whose event is no longer queued.
const VACANT: u32 = u32::MAX;

#[derive(Debug, Clone)]
struct Slot<E> {
    /// Index of the slot's entry in the heap, or [`VACANT`].
    pos: u32,
    /// Bumped every time the slot's event leaves the queue, so old handles
    /// never alias a later event reusing the slot.
    generation: u32,
    /// The queued event's payload, parked here so sifts never move it;
    /// `None` while the slot is vacant.
    payload: Option<E>,
}

/// A priority queue of timed events.
///
/// Events with equal timestamps pop in insertion order, which keeps
/// simulations deterministic. [`EventQueue::cancel`] removes the entry from
/// the heap immediately (O(log n)) and [`EventQueue::reschedule`] moves a
/// pending event to a new timestamp in place — the operations the engine's
/// eviction and DVFS paths hammer.
///
/// # Examples
///
/// ```
/// use dias_des::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// let h = q.push(SimTime::from_secs(2.0), "late");
/// q.push(SimTime::from_secs(1.0), "early");
/// q.cancel(h);
/// assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1.0), "early")));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<E> {
    heap: Vec<Entry>,
    slots: Vec<Slot<E>>,
    free: Vec<u32>,
    next_seq: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: Vec::new(),
            slots: Vec::new(),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// Creates an empty queue with room for `n` concurrent events.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        EventQueue {
            heap: Vec::with_capacity(n),
            slots: Vec::with_capacity(n),
            free: Vec::new(),
            next_seq: 0,
        }
    }

    /// An owned deep copy of the calendar — the branch primitive for
    /// checkpoint/restore simulation.
    ///
    /// The heap slab, parked payloads, handle table (slot positions *and*
    /// generations) and the FIFO sequence counter are all copied verbatim, so
    /// every [`EventHandle`] issued by this queue stays valid in the snapshot
    /// and resolves to the same event. From here on the two queues evolve
    /// independently; identical operation sequences produce bit-identical pop
    /// streams.
    ///
    /// # Examples
    ///
    /// ```
    /// use dias_des::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// let h = q.push(SimTime::from_secs(2.0), "task");
    /// let mut branch = q.snapshot();
    /// assert!(branch.cancel(h)); // pre-snapshot handles work in the branch
    /// assert!(q.cancel(h)); // ...without disturbing the original
    /// ```
    #[must_use]
    pub fn snapshot(&self) -> Self
    where
        E: Clone,
    {
        self.clone()
    }

    /// Schedules `payload` to fire at `time` and returns a handle for later
    /// cancellation or rescheduling.
    #[inline]
    pub fn push(&mut self, time: SimTime, payload: E) -> EventHandle {
        let key = match self.free.pop() {
            Some(key) => key,
            None => {
                let key = u32::try_from(self.slots.len()).expect("fewer than 2^32 live events");
                self.slots.push(Slot {
                    pos: VACANT,
                    generation: 0,
                    payload: None,
                });
                key
            }
        };
        self.slots[key as usize].payload = Some(payload);
        let seq = self.next_seq;
        self.next_seq += 1;
        let pos = self.heap.len();
        self.heap.push(Entry { time, seq, key });
        self.sift_up(pos);
        EventHandle::new(key, self.slots[key as usize].generation)
    }

    /// Cancels a scheduled event, removing its entry from the calendar in
    /// O(log n).
    ///
    /// Returns `true` if the event was still pending; `false` if it had
    /// already fired or been cancelled (stale handles are always rejected).
    pub fn cancel(&mut self, handle: EventHandle) -> bool {
        match self.resolve(handle) {
            Some(pos) => {
                self.remove_at(pos);
                true
            }
            None => false,
        }
    }

    /// Moves a pending event to `new_time` in place (decrease- or
    /// increase-key, O(log n)); the handle stays valid.
    ///
    /// For FIFO tie-breaking the rescheduled event behaves as if it had been
    /// newly pushed — among events with equal timestamps it fires *after*
    /// every event already scheduled — so `reschedule(h, t)` is a drop-in,
    /// single-sift replacement for `cancel(h)` + `push(t, payload)`.
    ///
    /// Returns `true` if the event was still pending; `false` (no-op) if it
    /// had already fired or been cancelled.
    ///
    /// # Examples
    ///
    /// The engine's DVFS switch is the canonical caller: every in-flight
    /// completion moves to its rescaled timestamp without losing its handle.
    ///
    /// ```
    /// use dias_des::{EventQueue, SimTime};
    ///
    /// let mut q = EventQueue::new();
    /// let slow = q.push(SimTime::from_secs(10.0), "task");
    /// q.push(SimTime::from_secs(4.0), "timer");
    /// // Sprinting halves the remaining work: 10 s becomes 5 s.
    /// assert!(q.reschedule(slow, SimTime::from_secs(5.0)));
    /// assert_eq!(q.pop(), Some((SimTime::from_secs(4.0), "timer")));
    /// assert_eq!(q.pop(), Some((SimTime::from_secs(5.0), "task")));
    /// // Once fired, the handle is stale and reschedule is a no-op.
    /// assert!(!q.reschedule(slow, SimTime::from_secs(9.0)));
    /// ```
    pub fn reschedule(&mut self, handle: EventHandle, new_time: SimTime) -> bool {
        let Some(pos) = self.resolve(handle) else {
            return false;
        };
        let entry = &mut self.heap[pos];
        entry.time = new_time;
        entry.seq = self.next_seq;
        self.next_seq += 1;
        // A fresh seq can only move the entry down among equal times, but the
        // new time itself may move it either way.
        let settled = self.sift_down(pos);
        self.sift_up(settled);
        true
    }

    /// Cancels every event of a group of handles — the per-job event-group
    /// operation behind the engine's multi-job eviction, where *one* job's
    /// pending completions must leave the calendar while every other job's
    /// events stay put (so a whole-queue [`EventQueue::clear`] is not an
    /// option).
    ///
    /// Returns how many events were actually cancelled; stale handles are
    /// skipped exactly as in [`EventQueue::cancel`].
    pub fn cancel_many<I>(&mut self, handles: I) -> usize
    where
        I: IntoIterator<Item = EventHandle>,
    {
        handles.into_iter().filter(|&h| self.cancel(h)).count()
    }

    /// Removes and returns the earliest event.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_with_handle().map(|(t, _, payload)| (t, payload))
    }

    /// Removes and returns the earliest event along with the (now fired)
    /// handle it was scheduled under, so callers tracking handles can match
    /// the event back to their own records.
    #[inline]
    pub fn pop_with_handle(&mut self) -> Option<(SimTime, EventHandle, E)> {
        if self.heap.is_empty() {
            return None;
        }
        let (entry, payload) = self.remove_at(0);
        // `remove_at` bumped the slot's generation; the fired event was
        // scheduled under the previous one.
        let fired_generation = self.slots[entry.key as usize].generation.wrapping_sub(1);
        let handle = EventHandle::new(entry.key, fired_generation);
        Some((entry.time, handle, payload))
    }

    /// Returns the timestamp of the earliest event without removing it.
    ///
    /// Cancelled events are gone from the calendar, so this is a plain
    /// borrow — no `&mut self` lazy cleanup.
    #[must_use]
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.first().map(|e| e.time)
    }

    /// Number of pending events in the queue.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` if no pending events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Removes every pending event, invalidating their handles.
    pub fn clear(&mut self) {
        for entry in self.heap.drain(..) {
            let slot = &mut self.slots[entry.key as usize];
            slot.pos = VACANT;
            slot.generation = slot.generation.wrapping_add(1);
            slot.payload = None;
            self.free.push(entry.key);
        }
    }

    /// Heap position of `handle`'s entry, or `None` for fired/cancelled/stale
    /// handles.
    #[inline]
    fn resolve(&self, handle: EventHandle) -> Option<usize> {
        let slot = self.slots.get(handle.key() as usize)?;
        if slot.generation != handle.generation() || slot.pos == VACANT {
            return None;
        }
        Some(slot.pos as usize)
    }

    /// Removes and returns the entry at heap position `pos` with its payload,
    /// freeing its slot and restoring the heap invariant.
    #[inline]
    fn remove_at(&mut self, pos: usize) -> (Entry, E) {
        let entry = self.heap[pos];
        let tail = self.heap.pop().expect("pos < len implies non-empty");
        if pos < self.heap.len() {
            // The displaced tail entry may belong above or below `pos`; seed
            // the hole at `pos` with it and let the sifts settle it.
            self.heap[pos] = tail;
            self.slots[tail.key as usize].pos = pos as u32;
            let settled = self.sift_down(pos);
            self.sift_up(settled);
        }
        let slot = &mut self.slots[entry.key as usize];
        slot.pos = VACANT;
        slot.generation = slot.generation.wrapping_add(1);
        let payload = slot.payload.take().expect("queued entry parks a payload");
        self.free.push(entry.key);
        (entry, payload)
    }

    /// Moves the entry at `pos` up until its parent is not after it; returns
    /// its final position. Requires `pos < self.heap.len()`.
    ///
    /// Hole technique: the moving key is lifted out once, each displaced
    /// parent is copied down one level (one copy, not a three-move swap), and
    /// the moving key is written back at its final position.
    fn sift_up(&mut self, mut pos: usize) -> usize {
        let moving = self.heap[pos];
        while pos > 0 {
            let parent = (pos - 1) / 2;
            let p = self.heap[parent];
            if !moving.before(&p) {
                break;
            }
            self.heap[pos] = p;
            self.slots[p.key as usize].pos = pos as u32;
            pos = parent;
        }
        self.heap[pos] = moving;
        self.slots[moving.key as usize].pos = pos as u32;
        pos
    }

    /// Moves the entry at `pos` down below any earlier child; returns its
    /// final position. Requires `pos < self.heap.len()`. Same hole technique
    /// as [`EventQueue::sift_up`].
    fn sift_down(&mut self, mut pos: usize) -> usize {
        let moving = self.heap[pos];
        let len = self.heap.len();
        loop {
            let left = 2 * pos + 1;
            if left >= len {
                break;
            }
            let right = left + 1;
            let child = if right < len && self.heap[right].before(&self.heap[left]) {
                right
            } else {
                left
            };
            let c = self.heap[child];
            if !c.before(&moving) {
                break;
            }
            self.heap[pos] = c;
            self.slots[c.key as usize].pos = pos as u32;
            pos = child;
        }
        self.heap[pos] = moving;
        self.slots[moving.key as usize].pos = pos as u32;
        pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(3.0), 'c');
        q.push(SimTime::from_secs(1.0), 'a');
        q.push(SimTime::from_secs(2.0), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(5.0);
        for i in 0..10 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1.0), "x");
        q.push(SimTime::from_secs(2.0), "y");
        assert!(q.cancel(h));
        assert!(!q.cancel(h), "double cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1.0), "x");
        assert!(q.pop().is_some());
        assert!(!q.cancel(h));
        // A later event must not be affected by the stale handle.
        q.push(SimTime::from_secs(2.0), "y");
        assert_eq!(q.pop().map(|(_, e)| e), Some("y"));
    }

    #[test]
    fn peek_time_is_borrow_only_and_live() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1.0), "x");
        q.push(SimTime::from_secs(4.0), "y");
        q.cancel(h);
        let shared: &EventQueue<&str> = &q;
        assert_eq!(shared.peek_time(), Some(SimTime::from_secs(4.0)));
    }

    #[test]
    fn len_tracks_live_events() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        let h1 = q.push(SimTime::ZERO, 1);
        q.push(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        q.cancel(h1);
        assert_eq!(q.len(), 1);
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_empties_queue_and_invalidates_handles() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::ZERO, 1);
        q.push(SimTime::from_secs(1.0), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert!(!q.cancel(h));
        assert!(!q.reschedule(h, SimTime::from_secs(9.0)));
    }

    #[test]
    fn bogus_handle_rejected() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(!q.cancel(EventHandle::new(99, 0)));
    }

    #[test]
    fn slot_reuse_rejects_stale_handles() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_secs(1.0), "a");
        q.pop();
        // The slot is reused by the next push with a bumped generation.
        let h2 = q.push(SimTime::from_secs(2.0), "b");
        assert_ne!(h1, h2);
        assert!(!q.cancel(h1), "stale handle must not cancel the new event");
        assert_eq!(q.len(), 1);
        assert!(q.cancel(h2));
    }

    #[test]
    fn reschedule_moves_event_both_directions() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(5.0), "move");
        q.push(SimTime::from_secs(3.0), "fixed");
        // Decrease-key: now earliest.
        assert!(q.reschedule(h, SimTime::from_secs(1.0)));
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(1.0)));
        // Increase-key: now latest.
        assert!(q.reschedule(h, SimTime::from_secs(9.0)));
        assert_eq!(q.pop().map(|(_, e)| e), Some("fixed"));
        assert_eq!(q.pop(), Some((SimTime::from_secs(9.0), "move")));
    }

    #[test]
    fn reschedule_ties_fire_after_existing_events() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1.0), "rescheduled");
        q.push(SimTime::from_secs(5.0), "earlier-pushed");
        // Same timestamp: the rescheduled event behaves as freshly pushed.
        assert!(q.reschedule(h, SimTime::from_secs(5.0)));
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["earlier-pushed", "rescheduled"]);
    }

    #[test]
    fn reschedule_after_fire_or_cancel_is_noop() {
        let mut q = EventQueue::new();
        let h = q.push(SimTime::from_secs(1.0), 1);
        q.pop();
        assert!(!q.reschedule(h, SimTime::from_secs(2.0)));
        let h2 = q.push(SimTime::from_secs(1.0), 2);
        q.cancel(h2);
        assert!(!q.reschedule(h2, SimTime::from_secs(2.0)));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_with_handle_matches_push_handle() {
        let mut q = EventQueue::new();
        let h1 = q.push(SimTime::from_secs(2.0), "b");
        let h2 = q.push(SimTime::from_secs(1.0), "a");
        let (t, h, payload) = q.pop_with_handle().unwrap();
        assert_eq!((t, h, payload), (SimTime::from_secs(1.0), h2, "a"));
        let (_, h, _) = q.pop_with_handle().unwrap();
        assert_eq!(h, h1);
    }

    #[test]
    fn snapshot_pops_bit_identically_and_keeps_handles_valid() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..50)
            .map(|i| q.push(SimTime::from_secs(f64::from((i * 13) % 20)), i))
            .collect();
        // Fire the three time-0 events and cancel a few others so the
        // snapshot sees reused slots and a non-trivial free list.
        q.pop();
        q.pop();
        q.pop();
        q.cancel(handles[10]);
        q.cancel(handles[11]);
        q.push(SimTime::from_secs(0.5), 99);

        let mut branch = q.snapshot();
        // Pre-snapshot handles resolve to the same events in the branch...
        assert!(branch.reschedule(handles[3], SimTime::from_secs(0.25)));
        assert_eq!(branch.pop(), Some((SimTime::from_secs(0.25), 3)));
        // ...stale handles stay stale (generations were preserved)...
        assert!(!branch.cancel(handles[10]));
        // ...and the original is untouched by branch operations.
        assert!(q.cancel(handles[3]));

        // With the one divergent event removed from both, the remaining pop
        // streams are bit-identical, including FIFO tie order.
        let a: Vec<_> = std::iter::from_fn(|| q.pop()).collect();
        let b: Vec<_> = std::iter::from_fn(|| branch.pop()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn snapshot_and_original_diverge_independently() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(1.0), "shared");
        let mut branch = q.snapshot();
        // New pushes after the snapshot get distinct slots per queue; FIFO
        // sequence numbers continue from the same counter in both.
        let hq = q.push(SimTime::from_secs(1.0), "orig");
        let hb = branch.push(SimTime::from_secs(1.0), "branch");
        assert_eq!(hq, hb, "branched counters start identical");
        assert_eq!(q.pop().map(|(_, e)| e), Some("shared"));
        assert_eq!(q.pop().map(|(_, e)| e), Some("orig"));
        assert_eq!(branch.pop().map(|(_, e)| e), Some("shared"));
        assert_eq!(branch.pop().map(|(_, e)| e), Some("branch"));
    }

    #[test]
    fn interleaved_cancel_keeps_heap_order() {
        let mut q = EventQueue::new();
        let handles: Vec<_> = (0..100)
            .map(|i| q.push(SimTime::from_secs(f64::from((i * 37) % 100)), i))
            .collect();
        for (i, h) in handles.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*h));
            }
        }
        let mut last = SimTime::ZERO;
        let mut n = 0;
        while let Some((t, i)) = q.pop() {
            assert!(t >= last);
            assert!(i % 3 != 0, "cancelled event {i} must not fire");
            last = t;
            n += 1;
        }
        assert_eq!(n, 66);
    }
}
