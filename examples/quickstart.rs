//! Quickstart: run the paper's reference two-priority workload under the four
//! headline policies and print a comparison table.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use dias_repro::core::{Experiment, Policy};
use dias_repro::workloads::reference_two_priority;

fn main() {
    let jobs = 1500;
    let seed = 7;

    println!("DiAS quickstart — two priorities, 9:1 arrivals, 80% load, {jobs} jobs/policy\n");

    let policies = [
        Policy::preemptive(2),
        Policy::non_preemptive(2),
        Policy::da_percent_high_to_low(&[0.0, 10.0]),
        Policy::da_percent_high_to_low(&[0.0, 20.0]),
    ];

    let mut baseline_low = 0.0;
    let mut baseline_high = 0.0;
    for policy in policies {
        let label = policy.label.clone();
        let report = Experiment::new(reference_two_priority(0.8, seed), policy)
            .jobs(jobs)
            .run()
            .expect("valid experiment");
        if label == "P" {
            baseline_low = report.mean_response(0);
            baseline_high = report.mean_response(1);
        }
        println!(
            "{:<10} low {:>7.1}s ({:+6.1}%)   high {:>7.1}s ({:+6.1}%)   waste {:>4.1}%  evictions {}",
            label,
            report.mean_response(0),
            (report.mean_response(0) - baseline_low) / baseline_low * 100.0,
            report.mean_response(1),
            (report.mean_response(1) - baseline_high) / baseline_high * 100.0,
            report.waste_fraction() * 100.0,
            report.evictions,
        );
    }

    println!();
    println!("Differential approximation trades a bounded accuracy loss of the");
    println!("low-priority class (Fig. 6: 15% error at a 20% drop) for large latency");
    println!("gains — and unlike the preemptive baseline, it never wastes work.");
}
