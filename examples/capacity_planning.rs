//! Model-guided capacity planning — the paper's §5.2.1 use case:
//!
//! > "a use case scenario where it is possible to tolerate a 30% accuracy loss for
//! > low-priority jobs while maintaining the latency of high-priority jobs under a
//! > bound with no accuracy loss. The task deflator consults the results in
//! > Figure 6 to determine the maximum drop ratios […] and runs the DiAS model to
//! > determine a drop ratio within the limit."
//!
//! The deflator searches drop-ratio combinations, scoring each with the Eq. 1
//! task-level PH service model inside the non-preemptive priority-queue formulas;
//! the chosen plan is then validated on the engine simulator against the same
//! *relative* degradation target.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use dias_repro::core::{Experiment, Policy};
use dias_repro::models::accuracy::{AccuracyCurve, SamplingErrorModel};
use dias_repro::models::deflator::{ClassConstraints, Deflator, ThetaService};
use dias_repro::models::priority::{non_preemptive_means, ClassInput};
use dias_repro::models::TaskLevelModel;
use dias_repro::stochastic::DiscreteDist;
use dias_repro::workloads::reference_two_priority;

fn main() {
    // Per-class service models (Eq. 1 task-level models of the two datasets).
    let low_service = TaskLevelModel {
        slots: 20,
        map_tasks: DiscreteDist::constant(50),
        reduce_tasks: DiscreteDist::constant(10),
        setup_rate: 1.0 / 12.0,
        map_task_rate: 1.0 / 33.4,
        shuffle_rate: 1.0 / 8.0,
        reduce_task_rate: 1.0 / 12.0,
        theta_map: 0.0,
        theta_reduce: 0.0,
    };
    let high_service = TaskLevelModel {
        map_task_rate: 1.0 / 27.9,
        reduce_task_rate: 1.0 / 11.0,
        setup_rate: 1.0 / 11.0,
        shuffle_rate: 1.0 / 7.0,
        ..low_service.clone()
    };

    // Accuracy curve calibrated to Fig. 6.
    let accuracy = SamplingErrorModel::paper_fig6();
    println!(
        "accuracy model: err(theta) = {:.1}*sqrt(theta/(1-theta))",
        accuracy.coefficient()
    );
    println!(
        "30% error tolerance admits theta <= {:.2}\n",
        accuracy.max_theta_for(30.0)
    );

    // Arrival rates in model units: 80% utilization, 9:1 low:high split.
    let s_low = low_service.mean_processing_time().expect("valid model");
    let s_high = high_service.mean_processing_time().expect("valid model");
    let total_rate = 0.8 / (0.9 * s_low + 0.1 * s_high);
    let rates = [0.9 * total_rate, 0.1 * total_rate];

    // High-priority latency target: within 15% of its zero-drop prediction.
    let zero = non_preemptive_means(&[
        ClassInput::from_ph(rates[0], &low_service.service_ph(0.0).expect("valid")),
        ClassInput::from_ph(rates[1], &high_service.service_ph(0.0).expect("valid")),
    ])
    .expect("stable at zero drop");
    let degradation_target = 1.15;
    let bound = zero[1].response * degradation_target;
    println!(
        "zero-drop predictions: low {:.1}s, high {:.1}s -> high bound {:.1}s",
        zero[0].response, zero[1].response, bound
    );

    let mut deflator = Deflator::new();
    deflator
        .class(
            ClassConstraints {
                lambda: rates[0],
                max_error_pct: 30.0,
                mean_latency_bound: None,
                sprint: None,
            },
            &low_service,
            &accuracy,
        )
        .class(
            ClassConstraints {
                lambda: rates[1],
                max_error_pct: 0.0,
                mean_latency_bound: Some(bound),
                sprint: None,
            },
            &high_service,
            &accuracy,
        );
    let plan = deflator.plan().expect("feasible plan exists");

    println!("\ndeflator plan:");
    println!(
        "  drop ratios: low theta = {:.2}, high theta = {:.2}",
        plan.thetas[0], plan.thetas[1]
    );
    println!(
        "  predicted: low {:.1}s ({:+.1}% vs zero-drop), high {:.1}s (bound {:.1}s)",
        plan.predicted[0].response,
        (plan.predicted[0].response - zero[0].response) / zero[0].response * 100.0,
        plan.predicted[1].response,
        bound
    );
    println!(
        "  accuracy loss: low {:.1}% (tolerance 30%), high {:.1}%",
        plan.errors[0], plan.errors[1]
    );

    // Engine validation of the *relative* target: with the planned drop ratios,
    // high-priority degradation vs the engine's own zero-drop run must stay within
    // the same 15%.
    let jobs = 1500;
    let engine_zero = Experiment::new(reference_two_priority(0.8, 11), Policy::non_preemptive(2))
        .jobs(jobs)
        .run()
        .expect("valid experiment");
    let engine_plan = Experiment::new(
        reference_two_priority(0.8, 11),
        Policy::differential_approximation(&plan.thetas),
    )
    .jobs(jobs)
    .run()
    .expect("valid experiment");
    let degradation = engine_plan.mean_response(1) / engine_zero.mean_response(1);
    println!("\nengine validation:");
    println!(
        "  high: zero-drop {:.1}s -> planned {:.1}s ({:+.1}%, target <= +15%): {}",
        engine_zero.mean_response(1),
        engine_plan.mean_response(1),
        (degradation - 1.0) * 100.0,
        if degradation <= degradation_target {
            "target met"
        } else {
            "target missed"
        }
    );
    println!(
        "  low:  zero-drop {:.1}s -> planned {:.1}s ({:+.1}%)",
        engine_zero.mean_response(0),
        engine_plan.mean_response(0),
        (engine_plan.mean_response(0) - engine_zero.mean_response(0))
            / engine_zero.mean_response(0)
            * 100.0,
    );
}
