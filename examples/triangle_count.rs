//! Graph analytics under per-stage dropping: run a *real* triangle count on a
//! synthetic web graph and show how per-ShuffleMap-stage sampling compounds into
//! accuracy loss, next to the latency the same ratios save in the cluster.
//!
//! ```sh
//! cargo run --release --example triangle_count
//! ```

use dias_repro::core::{Experiment, Policy};
use dias_repro::workloads::graph::{Graph, GraphConfig};
use dias_repro::workloads::triangle_two_priority;

fn main() {
    println!("== 1. The graph and its exact triangle count ==\n");
    let cfg = GraphConfig::google_web_scaled();
    let graph = Graph::generate(&cfg);
    let exact = graph.triangles();
    println!(
        "  R-MAT web graph: {} nodes, {} edges (Google-web shape, 1:100 scale)",
        graph.nodes(),
        graph.edges().len()
    );
    println!("  exact triangles: {exact}");

    println!("\n== 2. Per-stage dropping: accuracy of the 6-stage sampled count ==\n");
    for per_stage in [0.01f64, 0.02, 0.05, 0.10, 0.20] {
        let effective = 1.0 - (1.0 - per_stage).powi(6);
        let (estimate, err) = graph.approximate_triangles(per_stage, 6, 42);
        println!(
            "  {:>4.0}%/stage (effective {:>4.1}%): estimate {estimate:>10.0}, error {err:>5.1}%",
            per_stage * 100.0,
            effective * 100.0
        );
    }

    println!("\n== 3. Latency: the same ratios on the two-priority cluster ==\n");
    let jobs = 1200;
    let p = Experiment::new(triangle_two_priority(0.8, 5), Policy::preemptive(2))
        .jobs(jobs)
        .run()
        .expect("valid experiment");
    println!(
        "  P:        low {:>7.1}s, high {:>6.1}s, waste {:.1}%",
        p.mean_response(0),
        p.mean_response(1),
        p.waste_fraction() * 100.0
    );
    for per_stage_pct in [5.0, 10.0, 20.0] {
        let report = Experiment::new(
            triangle_two_priority(0.8, 5),
            Policy::da_percent_high_to_low(&[0.0, per_stage_pct]),
        )
        .jobs(jobs)
        .run()
        .expect("valid experiment");
        println!(
            "  DA(0,{:>2.0}): low {:>7.1}s ({:+.1}%), high {:>6.1}s ({:+.1}%)",
            per_stage_pct,
            report.mean_response(0),
            (report.mean_response(0) - p.mean_response(0)) / p.mean_response(0) * 100.0,
            report.mean_response(1),
            (report.mean_response(1) - p.mean_response(1)) / p.mean_response(1) * 100.0,
        );
    }

    println!("\nA few percent of dropped tasks per stage halves low-priority latency");
    println!("while the triangle estimate stays within a few percent of exact.");
}
