//! Differential approximation end to end: measure the accuracy loss of a *real*
//! word-count analysis under task dropping, then weigh it against the latency
//! gains the same drop ratio buys in the cluster.
//!
//! ```sh
//! cargo run --release --example differential_approximation
//! ```

use dias_repro::core::{Experiment, Policy};
use dias_repro::workloads::reference_two_priority;
use dias_repro::workloads::text::{accuracy_curve, CorpusConfig};

fn main() {
    println!("== 1. Accuracy: real word count over a synthetic StackExchange corpus ==\n");
    let cfg = CorpusConfig::paper_fig6();
    let thetas = [0.1, 0.2, 0.4];
    let curve = accuracy_curve(&cfg, 50, &thetas, usize::MAX);
    for (theta, err) in &curve {
        println!(
            "  drop {:>4.0}% of map tasks -> {err:>5.1}% mean absolute error",
            theta * 100.0
        );
    }

    println!("\n== 2. Latency: the same drop ratios in the two-priority cluster ==\n");
    let jobs = 1200;
    let baseline = Experiment::new(reference_two_priority(0.8, 3), Policy::non_preemptive(2))
        .jobs(jobs)
        .run()
        .expect("valid experiment");
    println!(
        "  NP (no dropping): low {:.1}s, high {:.1}s",
        baseline.mean_response(0),
        baseline.mean_response(1)
    );
    for theta in thetas {
        let report = Experiment::new(
            reference_two_priority(0.8, 3),
            Policy::differential_approximation(&[theta, 0.0]),
        )
        .jobs(jobs)
        .run()
        .expect("valid experiment");
        let err = curve
            .iter()
            .find(|(t, _)| (t - theta).abs() < 1e-9)
            .map_or(0.0, |(_, e)| *e);
        println!(
            "  DA(0,{:>2.0}): low {:>6.1}s ({:+.1}%), high {:>6.1}s ({:+.1}%), accuracy loss {:.1}%",
            theta * 100.0,
            report.mean_response(0),
            (report.mean_response(0) - baseline.mean_response(0)) / baseline.mean_response(0)
                * 100.0,
            report.mean_response(1),
            (report.mean_response(1) - baseline.mean_response(1)) / baseline.mean_response(1)
                * 100.0,
            err,
        );
    }

    println!("\nEach extra point of accuracy loss buys shorter queues for every class.");
}
