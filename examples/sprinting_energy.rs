//! Differential sprinting and the energy ledger: sweep sprint budgets and timeouts
//! on the graph workload and watch latency and energy move together.
//!
//! ```sh
//! cargo run --release --example sprinting_energy
//! ```

use dias_repro::core::{Experiment, Policy, SprintBudget, SprintPolicy};
use dias_repro::engine::ClusterSpec;
use dias_repro::workloads::triangle_two_priority;

fn main() {
    let jobs = 1200;
    let seed = 9;
    let extra_w = ClusterSpec::paper_reference().sprint_extra_power_w();
    println!("cluster: 10 workers x 2 cores, sprint 800 MHz -> 2.4 GHz (2.5x), +{extra_w} W\n");

    let p = Experiment::new(triangle_two_priority(0.8, seed), Policy::preemptive(2))
        .jobs(jobs)
        .run()
        .expect("valid experiment");
    println!(
        "{:<34} low {:>7.1}s  high {:>6.1}s  dyn-energy {:>7.0} kJ",
        "P (baseline)",
        p.mean_response(0),
        p.mean_response(1),
        p.dynamic_energy_joules() / 1000.0
    );

    let scenarios: Vec<(String, SprintPolicy)> = vec![
        (
            "DiAS(0,20) no sprint".into(),
            // A zero-budget sprint policy sprints nothing.
            SprintPolicy::top_class(2, 0.0, SprintBudget::limited(1e-6, 0.0)),
        ),
        (
            "DiAS(0,20) limited (22 kJ, T=65s)".into(),
            SprintPolicy::top_class(2, 65.0, SprintBudget::paper_limited(extra_w)),
        ),
        (
            "DiAS(0,20) limited (66 kJ, T=30s)".into(),
            SprintPolicy::top_class(
                2,
                30.0,
                SprintBudget::limited(66_000.0, 3.0 * extra_w * 0.1),
            ),
        ),
        (
            "DiAS(0,20) unlimited (T=0)".into(),
            SprintPolicy::top_class(2, 0.0, SprintBudget::Unlimited),
        ),
    ];

    for (label, sprint) in scenarios {
        let policy = Policy::da_percent_high_to_low(&[0.0, 20.0]).with_sprint(sprint);
        let report = Experiment::new(triangle_two_priority(0.8, seed), policy)
            .jobs(jobs)
            .run()
            .expect("valid experiment");
        println!(
            "{:<34} low {:>7.1}s  high {:>6.1}s  dyn-energy {:>7.0} kJ ({:+.1}%)  sprint {:>6.0}s",
            label,
            report.mean_response(0),
            report.mean_response(1),
            report.dynamic_energy_joules() / 1000.0,
            (report.dynamic_energy_joules() - p.dynamic_energy_joules())
                / p.dynamic_energy_joules()
                * 100.0,
            report.sprint_secs,
        );
    }

    println!();
    println!("Sprinting draws 1.5x power but finishes 2.5x faster, so every sprinted");
    println!("second *saves* energy — which is why DiAS beats the baseline on both axes.");
}
