//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! The build environment has no crates.io access, so this crate implements the
//! subset of the criterion API the workspace's `micro` bench uses —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`], [`criterion_group!`]/[`criterion_main!`] — on top of a
//! plain wall-clock measurement loop (per-sample medians over a calibrated
//! batch size; no bootstrap statistics, plots, or baselines).
//!
//! Two environment variables tune it:
//!
//! * `DIAS_BENCH_JSON` — if set, the final summary is also written to this
//!   path as a JSON array of `{name, mean_ns, samples}` objects (used by
//!   `scripts/bench_baseline.sh` to seed `BENCH_baseline.json`).
//! * `DIAS_BENCH_SAMPLES` — overrides the per-benchmark sample count
//!   (default 30; `BenchmarkGroup::sample_size` also sets it).

#![forbid(unsafe_code)]

use std::fmt::Write as _;
use std::time::Instant;

pub use std::hint::black_box;

const DEFAULT_SAMPLES: usize = 30;
/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE_SECS: f64 = 0.01;

/// Renders a nanosecond figure with a human-friendly unit.
fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

fn env_samples() -> Option<usize> {
    std::env::var("DIAS_BENCH_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
}

/// One finished measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Benchmark id (`group/name` for grouped benches).
    pub name: String,
    /// Median of per-sample mean iteration times, in nanoseconds.
    pub mean_ns: f64,
    /// Number of samples measured.
    pub samples: usize,
}

/// Top-level bench harness; collects results and prints/export a summary.
#[derive(Debug, Default)]
pub struct Criterion {
    results: Vec<BenchResult>,
}

impl Criterion {
    /// Measures `f` under `name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let samples = env_samples().unwrap_or(DEFAULT_SAMPLES);
        self.run_one(name.to_owned(), samples, f);
        self
    }

    /// Opens a named group; benchmark ids become `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.to_owned(),
            samples: env_samples().unwrap_or(DEFAULT_SAMPLES),
        }
    }

    fn run_one<F>(&mut self, name: String, samples: usize, mut f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples,
            mean_ns: 0.0,
        };
        f(&mut bencher);
        println!("{:<44} time: {}", name, format_ns(bencher.mean_ns));
        self.results.push(BenchResult {
            name,
            mean_ns: bencher.mean_ns,
            samples,
        });
    }

    /// Prints the run's results and, when `DIAS_BENCH_JSON` is set, writes
    /// them to that path as JSON. Called by [`criterion_main!`].
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("DIAS_BENCH_JSON") {
            if !path.is_empty() {
                match std::fs::write(&path, self.to_json()) {
                    Ok(()) => println!("wrote {} results to {path}", self.results.len()),
                    Err(e) => eprintln!("failed to write {path}: {e}"),
                }
            }
        }
    }

    /// Serializes results as a JSON array (hand-rolled; no serde formats in
    /// the offline build).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let comma = if i + 1 == self.results.len() { "" } else { "," };
            let _ = writeln!(
                out,
                "  {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"samples\": {}}}{comma}",
                r.name.replace('"', "\\\""),
                r.mean_ns,
                r.samples
            );
        }
        out.push_str("]\n");
        out
    }
}

/// A group of related benchmarks sharing a name prefix and sample count.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    samples: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-benchmark sample count for this group.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        // An explicit override from the environment still wins: it is how the
        // smoke/CI path caps bench cost globally.
        if env_samples().is_none() {
            self.samples = samples;
        }
        self
    }

    /// Measures `f` under `prefix/name`.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.prefix, name);
        let samples = self.samples;
        self.criterion.run_one(full, samples, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// Timer handle passed to the benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`: calibrates a batch size targeting ~10 ms per sample, then
    /// records the median per-iteration time over the configured samples.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        // Warm up and calibrate the batch size on a single run.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().as_secs_f64().max(1e-9);
        let batch = (TARGET_SAMPLE_SECS / once).clamp(1.0, 1e7) as u64;

        let mut per_iter: Vec<f64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            per_iter.push(start.elapsed().as_secs_f64() * 1e9 / batch as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        self.mean_ns = per_iter[per_iter.len() / 2];
    }
}

/// Declares a bench group function, mirroring criterion's macro of the same
/// name: `criterion_group!(benches, bench_a, bench_b);`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(criterion: &mut $crate::Criterion) {
            $($target(criterion);)+
        }
    };
}

/// Declares `fn main` running the listed groups and printing the summary.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut criterion = $crate::Criterion::default();
            $($group(&mut criterion);)+
            criterion.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion::default();
        c.bench_function("sum_1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns > 0.0);
        let json = c.to_json();
        assert!(json.contains("\"name\": \"sum_1k\""));
        assert!(json.trim_start().starts_with('['));
    }

    #[test]
    fn group_prefixes_names() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("grp");
        g.sample_size(5);
        g.bench_function("inner", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
        assert_eq!(c.results[0].name, "grp/inner");
    }
}
