//! The [`Strategy`] trait and the combinators the workspace's suites use.

use crate::TestRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike the real crate there is no value tree and no shrinking: a strategy
/// is just a deterministic function of the test RNG.
pub trait Strategy {
    /// Type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng: &mut TestRng| self.sample(rng)))
    }
}

/// Output of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice among boxed strategies; output of [`prop_oneof!`](crate::prop_oneof).
pub struct Union<T> {
    choices: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over `choices`. Panics if `choices` is empty.
    #[must_use]
    pub fn new(choices: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !choices.is_empty(),
            "prop_oneof! needs at least one strategy"
        );
        Union { choices }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.gen_range(0..self.choices.len());
        self.choices[idx].sample(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T` over its whole value range.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Output of [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

arbitrary_ints!(u64, u32, u16, u8, usize, i64, i32, i16, i8, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen::<bool>()
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(f64, u64, usize, u32, u16, u8);

impl Strategy for core::ops::Range<i64> {
    type Value = i64;

    fn sample(&self, rng: &mut TestRng) -> i64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<i32> {
    type Value = i32;

    fn sample(&self, rng: &mut TestRng) -> i32 {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F),
    (A, B, C, D, E, F, G),
    (A, B, C, D, E, F, G, H),
);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = test_rng("strategy::ranges", 0);
        for _ in 0..500 {
            let x = (0.5f64..2.0).sample(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let n = (3usize..9).sample(&mut rng);
            assert!((3..9).contains(&n));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let strat = (1usize..4, 0.0f64..1.0).prop_map(|(n, x)| n as f64 + x);
        let mut rng = test_rng("strategy::compose", 0);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1.0..4.0).contains(&v));
        }
    }

    #[test]
    fn union_draws_from_every_branch() {
        let u = crate::prop_oneof![Just(1usize), Just(2usize), Just(3usize)];
        let mut rng = test_rng("strategy::union", 0);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[u.sample(&mut rng)] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }
}
