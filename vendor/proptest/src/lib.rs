//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no crates.io access, so this crate implements the
//! subset of proptest the workspace's property suites use: the [`proptest!`]
//! macro, range/tuple/vec/`prop_map`/`prop_oneof!` strategies, `any::<T>()`,
//! and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, on purpose:
//!
//! * **Deterministic by construction.** Case inputs derive from a fixed hash
//!   of `module_path!()::test_name` and the case index — no OS entropy, no
//!   failure persistence files. A failing case always reproduces.
//! * **No shrinking.** A failure reports the case index and message; inputs
//!   are already small because the suites bound their strategies tightly.
//! * **Case counts** default to [`DEFAULT_CASES`] and can be overridden per
//!   suite via `ProptestConfig::with_cases` or globally with the
//!   `PROPTEST_CASES` environment variable.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod collection;
pub mod strategy;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};

/// RNG driving all strategy sampling.
pub type TestRng = StdRng;

/// Cases per property when neither the suite nor the environment overrides it.
pub const DEFAULT_CASES: u32 = 64;

/// Per-suite test-runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running exactly `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// Honors `PROPTEST_CASES`, falling back to [`DEFAULT_CASES`].
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CASES);
        ProptestConfig { cases }
    }
}

/// Builds the deterministic RNG for one test case.
///
/// Keyed by the fully-qualified test name and the case index so that every
/// property sees an independent, reproducible stream and adding a property to
/// a suite never perturbs its neighbours.
#[must_use]
pub fn test_rng(test_name: &str, case: u32) -> TestRng {
    // FNV-1a over the name, then fold in the case index.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in test_name.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    TestRng::seed_from_u64(h ^ (u64::from(case) << 32 | u64::from(case)))
}

/// Everything a property suite needs in scope.
pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig,
    };

    /// Mirror of the real prelude's `prop` module alias.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines property tests: `proptest! { #[test] fn p(x in strat) { ... } }`.
///
/// Bodies behave like the real crate's: `prop_assert*!`/`prop_assume!` work,
/// and `return Ok(());` exits a case early.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                for __case in 0..__config.cases {
                    let mut __rng = $crate::test_rng(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> =
                        (move || {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "{} failed at case {}/{}: {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __msg
                        );
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current case instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(__l == __r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l,
                        __r
                    ));
                }
            }
        }
    };
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (__l, __r) => {
                if !(__l != __r) {
                    return ::std::result::Result::Err(::std::format!(
                        "assertion failed: `{} != {}`\n  both: {:?}",
                        stringify!($left),
                        stringify!($right),
                        __l
                    ));
                }
            }
        }
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
///
/// The stand-in counts a skipped case as passed rather than resampling.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(::std::vec![$($crate::Strategy::boxed($strat)),+])
    };
}
