//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::TestRng;
use rand::Rng;

/// Size bounds for generated collections.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
#[must_use]
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Output of [`vec()`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.lo..=self.size.hi);
        (0..n).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_rng;

    #[test]
    fn vec_respects_length_bounds() {
        let strat = vec(0.0f64..1.0, 2..5);
        let mut rng = test_rng("collection::vec", 0);
        for _ in 0..200 {
            let v = strat.sample(&mut rng);
            assert!((2..=4).contains(&v.len()));
            assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }
}
