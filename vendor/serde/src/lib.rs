//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no crates.io access, so this crate provides just
//! enough API for `use serde::{Deserialize, Serialize}` and
//! `#[derive(Serialize, Deserialize)]` to compile: marker traits that are
//! blanket-implemented for every type, and derive macros that expand to
//! nothing. No serialization format ships with the workspace today; when one
//! is needed, this crate is the seam where the real serde plugs back in.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`; satisfied by every type.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize<'de>`; satisfied by every type.
pub trait Deserialize<'de> {}

impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`; satisfied by every type.
pub trait DeserializeOwned {}

impl<T: ?Sized> DeserializeOwned for T {}

/// Namespace mirror of `serde::de`.
pub mod de {
    pub use crate::{Deserialize, DeserializeOwned};
}

/// Namespace mirror of `serde::ser`.
pub mod ser {
    pub use crate::Serialize;
}

#[cfg(test)]
mod tests {
    #[derive(crate::Serialize, crate::Deserialize, Debug, PartialEq)]
    struct Demo<T> {
        #[serde(rename = "value")]
        inner: T,
        n: usize,
    }

    #[test]
    fn derives_parse_and_traits_hold() {
        fn assert_traits<T: crate::Serialize + for<'de> crate::Deserialize<'de>>(_: &T) {}
        let d = Demo {
            inner: 1.5f64,
            n: 3,
        };
        assert_traits(&d);
        assert_eq!(d, Demo { inner: 1.5, n: 3 });
    }
}
