//! No-op `Serialize`/`Deserialize` derives for the vendored serde stand-in.
//!
//! The vendored [`serde`](../serde) crate blanket-implements its marker traits
//! for every type, so these derives only need to make `#[derive(Serialize,
//! Deserialize)]` (and `#[serde(...)]` helper attributes) parse — they expand
//! to nothing.

#![forbid(unsafe_code)]

use proc_macro::TokenStream;

/// Expands to nothing; `serde::Serialize` is blanket-implemented.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; `serde::Deserialize` is blanket-implemented.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
