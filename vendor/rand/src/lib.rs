//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment for this repository has no access to crates.io, so the
//! workspace vendors a minimal, API-compatible subset of `rand` 0.8: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits and a deterministic
//! [`rngs::StdRng`]. Only what the workspace actually calls is provided.
//!
//! The generator is SplitMix64 — a counter-based generator with a strong
//! 64-bit finalizer. It is statistically sound for simulation workloads and,
//! unlike the real `StdRng`, its streams are stable across releases, which
//! this repository's reproducibility story leans on.

#![forbid(unsafe_code)]

pub mod rngs;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (upper half of [`RngCore::next_u64`]).
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value whose type implements the [`Standard`] distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable "from the standard distribution" (`rng.gen::<T>()`).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// Element type produced by the range.
    type Output;

    /// Draws one value uniformly from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * f64::sample_standard(rng)
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;

    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        lo + (hi - lo) * f64::sample_standard(rng)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }

        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u64, usize, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;

            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

signed_sample_range!(i64, i32, isize);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5.0f64..5.0);
            assert!((-5.0..5.0).contains(&y));
        }
    }

    #[test]
    fn mean_of_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.005);
    }
}
