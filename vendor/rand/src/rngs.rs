//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// Deterministic 64-bit generator (SplitMix64).
///
/// Unlike the real `rand::rngs::StdRng`, the stream produced for a given seed
/// is guaranteed stable forever, which the workspace's reproducibility
/// guarantees (seeded experiments, derived streams) rely on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StdRng {
    state: u64,
}

impl SeedableRng for StdRng {
    fn seed_from_u64(state: u64) -> Self {
        StdRng {
            // Pre-mix so that small consecutive seeds do not yield correlated
            // first outputs.
            state: splitmix64(state ^ 0x9e37_79b9_7f4a_7c15),
        }
    }
}

impl RngCore for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        finalize(self.state)
    }
}

/// SplitMix64 finalizer: bijective avalanche of the counter state.
#[inline]
fn finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One full SplitMix64 step (advance + finalize), used for seed pre-mixing.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    finalize(z)
}
